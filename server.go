package forkbase

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/obs"
	"forkbase/internal/postree"
	"forkbase/internal/store"
	"forkbase/internal/types"
	"forkbase/internal/wire"
)

// ErrServerClosed is the typed error a draining server answers new
// requests with; in-flight requests still complete. It round-trips to
// clients, so a RemoteStore caller can tell "server going away" from
// a data error and fail over.
var ErrServerClosed = wire.ErrShutdown

// ErrDuplicateRequest is the typed error a request receives when its
// id is already in flight on the same connection. The server refuses
// the newcomer rather than overwriting the original's cancel
// registration; the original request is unaffected. A well-behaved
// RemoteStore never triggers it (ids are monotonic per connection),
// so seeing it client-side means a buggy or hostile multiplexer.
var ErrDuplicateRequest = wire.ErrDuplicateRequest

// ServerOptions configures NewServer.
type ServerOptions struct {
	// AuthToken, when non-empty, must be presented by every
	// connection's Hello before any request is served. The protocol is
	// plaintext: the token gates accidental cross-talk, it is not a
	// substitute for a trusted network (see README, "Serving over the
	// network").
	AuthToken string
	// MaxFrame caps a single request or response frame in bytes; 0
	// means wire.DefaultMaxFrame (256 MiB). Values a client ships in
	// one Put must fit in one frame.
	MaxFrame int
	// Logf, when set, receives connection-level diagnostics (framing
	// violations, disconnects). Nil discards them.
	Logf func(format string, args ...any)
	// DisableChunkSync turns off the chunk-granular transfer ops even
	// when the backend could serve them: the server stops advertising
	// FeatureChunkSync and answers the chunk ops with ErrUnsupported,
	// forcing clients onto the full-ship path.
	DisableChunkSync bool
	// Workers bounds the request-execution pool shared by every
	// connection; 0 means 4×GOMAXPROCS. The pool replaces
	// goroutine-per-request dispatch: a saturated pool exerts
	// backpressure (connections stop reading) instead of spawning
	// unboundedly. Small reads against a local backend are answered
	// inline on each connection's read loop and never occupy a worker,
	// so the pool sizes against slow requests (deep Track walks, big
	// Values), not request rate.
	Workers int
	// SlowOpThreshold, when positive, logs (via Logf) every dispatched
	// request whose execution exceeds it — op name, peer address,
	// duration and error class — so tail-latency outliers in the
	// histograms are attributable to something. 0 disables the log;
	// the latency histograms record regardless.
	SlowOpThreshold time.Duration
}

// chunkBackend is the optional capability a wrapped store can expose
// to serve the chunk-granular transfer ops. The embedded *DB
// implements it; proxy backends (ClusterClient, RemoteStore) do not —
// they have no local chunk store to negotiate against — so a server
// wrapping one simply never advertises FeatureChunkSync and clients
// fall back to full-ship transparently.
type chunkBackend interface {
	// chunkStore is the content-addressed store chunk ops read from
	// and admit into.
	chunkStore() store.Store
	// treeConfig is the POS-Tree configuration committed versions are
	// attached with.
	treeConfig() postree.Config
	// shieldChunks / unshieldChunks bracket the window between a chunk
	// becoming known to a client (uploaded, or reported present during
	// negotiation) and the commit that references it, keeping GC from
	// sweeping it mid-upload.
	shieldChunks(ids []chunk.ID)
	unshieldChunks(ids []chunk.ID)
	// checkChunkAccess runs the access controller for a chunk-level
	// read (write=false) or upload/commit (write=true) on key.
	checkChunkAccess(user, key string, write bool) error
}

// Server exposes any Store — an embedded *DB, a ClusterClient, even
// another RemoteStore — over the forkbase wire protocol. This is the
// paper's dispatcher made real (§4.1): requests arrive over TCP,
// carry the user identity the access controller checks, and execute
// against the wrapped store with full pipelining — many in-flight
// requests per connection, each answered as it completes.
//
//	srv := forkbase.NewServer(db, forkbase.ServerOptions{})
//	ln, _ := net.Listen("tcp", ":7707")
//	go srv.Serve(ln)
//	...
//	srv.Shutdown(ctx) // graceful: drain in-flight, refuse new work
type Server struct {
	st   Store
	opts ServerOptions

	// batcher is st's put-coalescing capability (the embedded *DB);
	// nil for proxy backends, which dispatch puts singly.
	batcher serverBatcher
	// inline marks a local backend whose small reads are answered on
	// the read loop. Proxies stay false: their Get may block on a
	// downstream round-trip, which would stall every pipelined request
	// behind it on this connection.
	inline bool

	// reg/met are the server's observability spine: reg owns every
	// instrument; met caches them in per-op arrays so the request path
	// never touches the registry (see metrics.go).
	reg *obs.Registry
	met serverMetrics

	tasks    chan serverTask
	workerWG sync.WaitGroup
	stopOnce sync.Once

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*serverConn]struct{}
	draining bool
	closed   bool

	inflight sync.WaitGroup // request handlers across all connections
	connWG   sync.WaitGroup // connection read loops
}

// serverBatcher is the optional capability a wrapped store exposes to
// execute a coalesced batch of independent puts with per-put results.
type serverBatcher interface {
	putBatchServer(ctx context.Context, user string, puts []core.BatchPut) ([]UID, []error)
}

// NewServer returns a server over st. The store stays owned by the
// caller: Shutdown/Close never close it, so one store can outlive —
// or be shared by — several listeners. The worker pool starts here,
// so a Server must be Shutdown or Closed even if Serve never ran.
func NewServer(st Store, opts ServerOptions) *Server {
	if opts.Workers <= 0 {
		opts.Workers = 4 * runtime.GOMAXPROCS(0)
	}
	s := &Server{st: st, opts: opts, conns: make(map[*serverConn]struct{})}
	s.batcher, _ = st.(serverBatcher)
	_, s.inline = st.(*DB)
	s.tasks = make(chan serverTask, 2*opts.Workers)
	s.reg = obs.NewRegistry()
	s.met.init(s.reg)
	s.reg.GaugeFunc("forkbase_server_queue_depth", "", func() int64 { return int64(len(s.tasks)) })
	for i := 0; i < opts.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

// serverTask is one unit of pooled work: a registered slow-path
// request, or a coalesced put batch (batch non-nil; the per-request
// fields unused).
type serverTask struct {
	sc      *serverConn
	ctx     context.Context
	cancel  context.CancelFunc
	reqID   uint64
	op      uint8
	payload []byte
	buf     []byte // owning frame buffer; payload aliases it
	user    string
	batch   []putFrame
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.tasks {
		if t.batch != nil {
			t.sc.runPutBatch(t.user, t.batch)
		} else {
			t.sc.handle(t.ctx, t.cancel, t.reqID, t.op, t.payload)
			wire.PutFrameBuf(t.buf)
		}
	}
}

// stopWorkers joins the pool. Only safe once every read loop has
// exited (connWG drained): a loop could otherwise send on the closed
// channel.
func (s *Server) stopWorkers() {
	s.stopOnce.Do(func() { close(s.tasks) })
	s.workerWG.Wait()
}

// Serve accepts connections on ln until Shutdown or Close. It always
// returns a non-nil error; after a clean Shutdown that error is
// ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	var retryDelay time.Duration
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.draining || s.closed
			s.mu.Unlock()
			if stopped {
				return ErrServerClosed
			}
			// Transient accept failures (fd exhaustion under load,
			// ECONNABORTED) must not kill a daemon with established
			// clients; back off and retry, the way net/http does.
			if ne, ok := err.(net.Error); ok && ne.Temporary() {
				if retryDelay == 0 {
					retryDelay = 5 * time.Millisecond
				} else if retryDelay *= 2; retryDelay > time.Second {
					retryDelay = time.Second
				}
				s.logf("forkserved: accept: %v; retrying in %v", err, retryDelay)
				time.Sleep(retryDelay)
				continue
			}
			return err
		}
		retryDelay = 0
		sc := s.newConn(c)
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[sc] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go sc.readLoop()
	}
}

// Shutdown drains the server: the listener closes, requests already
// executing run to completion and their responses are flushed, and
// new requests are refused with ErrServerClosed. It returns nil once
// every in-flight request has finished, or ctx.Err() if the drain
// outlives ctx — in which case the remaining work is cut off as Close
// would.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.closeConns()
	s.connWG.Wait()
	s.stopWorkers()
	return err
}

// Close stops the server immediately: the listener and every
// connection close, cancelling in-flight requests.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.closeConns()
	s.connWG.Wait()
	s.stopWorkers()
	return nil
}

func (s *Server) closeConns() {
	s.mu.Lock()
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.close()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// serverConn is one client connection: a read loop feeding pipelined
// request handlers, a batching frame writer coalescing their response
// frames, and a cancel registry so OpCancel (or the connection
// dropping) aborts exactly the in-flight work it should.
type serverConn struct {
	srv *Server
	c   net.Conn
	br  *bufio.Reader
	fw  *frameWriter

	ctx    context.Context // cancelled when the connection dies
	cancel context.CancelFunc

	// authed and closed are atomics, not mu-guarded: the read loop
	// consults them per frame and must not contend with in-flight
	// handlers' inflight-map updates under mu.
	authed atomic.Bool
	closed atomic.Bool

	// deferredDone counts inline responses enqueued but not yet
	// flushed; their inflight slots are released only after the burst
	// flush, preserving Shutdown's "every admitted request's response
	// is flushed" contract. Read-loop-only, no locking.
	deferredDone int

	mu       sync.Mutex
	inflight map[uint64]context.CancelFunc

	// shields tracks, per chunk id, how many GC shield references this
	// connection holds on the backend (taken during chunk negotiation
	// and upload, released when the referencing commit lands). Whatever
	// is left when the connection dies — a client that uploaded and
	// hung up — is released wholesale, returning the orphaned chunks to
	// the collector.
	shields map[chunk.ID]int
}

func (s *Server) newConn(c net.Conn) *serverConn {
	//forkvet:allow ctxflow — a connection IS a context root: per-request contexts hang off it and die with the socket, not with any caller
	ctx, cancel := context.WithCancel(context.Background())
	sc := &serverConn{
		srv:      s,
		c:        c,
		br:       bufio.NewReaderSize(c, connBufSize),
		ctx:      ctx,
		cancel:   cancel,
		inflight: make(map[uint64]context.CancelFunc),
	}
	sc.fw = newFrameWriter(c, s.met.bytesOut, func(err error) {
		if !sc.isClosed() {
			s.logf("forkserved: write to %s: %v", c.RemoteAddr(), err)
		}
	})
	return sc
}

// chunkBack returns the wrapped store's chunk capability, nil when
// absent or disabled.
func (s *Server) chunkBack() chunkBackend {
	if s.opts.DisableChunkSync {
		return nil
	}
	cb, _ := s.st.(chunkBackend)
	return cb
}

// features is the capability bitmask advertised in the Hello response.
func (s *Server) features() uint32 {
	// Every server answers OpServerStats: the snapshot surface has no
	// backend requirement, unlike the chunk ops.
	f := wire.FeatureServerStats
	if s.chunkBack() != nil {
		f |= wire.FeatureChunkSync | wire.FeatureWantStream
	}
	return f
}

// addShields takes one backend shield per unique id and records it
// against this connection.
func (sc *serverConn) addShields(cb chunkBackend, ids []chunk.ID) {
	if len(ids) == 0 {
		return
	}
	sc.mu.Lock()
	if sc.shields == nil {
		sc.shields = make(map[chunk.ID]int)
	}
	for _, id := range ids {
		sc.shields[id]++
	}
	sc.mu.Unlock()
	cb.shieldChunks(ids)
}

// dropShields releases one connection-held shield per unique id (ids
// the connection never shielded are ignored).
func (sc *serverConn) dropShields(cb chunkBackend, ids []chunk.ID) {
	seen := make(map[chunk.ID]bool, len(ids))
	release := make([]chunk.ID, 0, len(ids))
	sc.mu.Lock()
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		if n, ok := sc.shields[id]; ok && n > 0 {
			if n == 1 {
				delete(sc.shields, id)
			} else {
				sc.shields[id] = n - 1
			}
			release = append(release, id)
		}
	}
	sc.mu.Unlock()
	if len(release) > 0 {
		cb.unshieldChunks(release)
	}
}

// dropAllShields releases every shield reference the connection still
// holds (connection teardown).
func (sc *serverConn) dropAllShields() {
	cb, _ := sc.srv.st.(chunkBackend)
	if cb == nil {
		return
	}
	sc.mu.Lock()
	var release []chunk.ID
	for id, n := range sc.shields {
		for i := 0; i < n; i++ {
			release = append(release, id)
		}
	}
	sc.shields = nil
	sc.mu.Unlock()
	if len(release) > 0 {
		cb.unshieldChunks(release)
	}
}

// close tears the connection down and cancels its in-flight requests.
func (sc *serverConn) close() {
	if !sc.closed.CompareAndSwap(false, true) {
		return
	}
	sc.dropAllShields()
	sc.cancel() // aborts handlers blocked in ctx-aware walks
	sc.c.Close()
	sc.srv.mu.Lock()
	delete(sc.srv.conns, sc)
	sc.srv.mu.Unlock()
}

// rawFrame is one parsed frame plus the pooled buffer it lives in.
type rawFrame struct {
	reqID   uint64
	op      uint8
	payload []byte
	buf     []byte
}

// readLoop parses frames until the connection dies. Framing
// violations close this connection only — the stream cannot be
// resynchronized — while well-framed garbage (unknown ops, undecodable
// payloads) is answered with a typed error and the connection lives.
//
// The loop is also where response batching is decided: while complete
// frames are still buffered (a pipelined burst mid-arrival), inline
// responses are corked in the frame writer; when the burst is spent
// the loop flushes once and releases the corked requests' inflight
// slots. One syscall per burst, in each direction.
func (sc *serverConn) readLoop() {
	defer sc.srv.connWG.Done()
	defer sc.close()
	defer sc.releaseDeferred()
	var carry *rawFrame
	for {
		var f rawFrame
		if carry != nil {
			f, carry = *carry, nil
		} else {
			var err error
			if f, err = sc.readFrame(); err != nil {
				wire.PutFrameBuf(f.buf)
				if !errors.Is(err, io.EOF) && !sc.isClosed() {
					sc.srv.logf("forkserved: %s: %v", sc.c.RemoteAddr(), err)
				}
				return
			}
		}
		keep, next, exit := sc.processFrame(f)
		if !keep {
			wire.PutFrameBuf(f.buf)
		}
		if exit {
			return
		}
		carry = next
		if carry == nil && !wire.FrameBuffered(sc.br) {
			sc.fw.flush()
			sc.releaseDeferred()
		}
	}
}

func (sc *serverConn) readFrame() (rawFrame, error) {
	var f rawFrame
	var err error
	f.reqID, f.op, f.payload, f.buf, err = wire.ReadFrameInto(sc.br, sc.srv.opts.MaxFrame, wire.GetFrameBuf())
	if err == nil {
		sc.srv.met.bytesIn.Add(frameWireBytes + int64(len(f.payload)))
	}
	return f, err
}

// releaseDeferred settles the inflight slots of inline responses now
// that their bytes have been handed to the connection.
func (sc *serverConn) releaseDeferred() {
	for ; sc.deferredDone > 0; sc.deferredDone-- {
		sc.srv.reqDone()
	}
}

// processFrame handles one parsed frame. keep reports that ownership
// of f.buf moved on (worker task or put batch); carry is a follow-up
// frame the put coalescer read but could not use, to be processed
// next; exit ends the read loop.
func (sc *serverConn) processFrame(f rawFrame) (keep bool, carry *rawFrame, exit bool) {
	switch {
	case f.op == wire.OpCancel:
		// Abort the named request; no response of its own (and no
		// latency: counted, not timed).
		sc.srv.met.reqs[wire.OpCancel].Inc()
		d := wire.NewDec(f.payload)
		target := d.U64()
		if d.Err() == nil {
			sc.mu.Lock()
			if cancel := sc.inflight[target]; cancel != nil {
				cancel()
			}
			sc.mu.Unlock()
		}
	case f.op == wire.OpHello:
		if !sc.hello(f.reqID, f.payload) {
			return false, nil, true
		}
	case !sc.isAuthed():
		// Requests before a successful Hello are a protocol
		// violation; refuse and hang up.
		sc.respondErr(f.reqID, f.op, fmt.Errorf("%w: hello required before requests", ErrAccessDenied), nil, UID{})
		return false, nil, true
	case !wire.KnownOp(f.op):
		sc.respondErr(f.reqID, f.op, fmt.Errorf("%w: unknown op %d (this server speaks ops %d..%d)",
			wire.ErrCodec, f.op, wire.OpHello, wire.OpMax-1), nil, UID{})
	case !sc.srv.admit():
		sc.respondErr(f.reqID, f.op, ErrServerClosed, nil, UID{})
	case sc.inlineOp(f.op):
		// The small-op fast path: answer right here on the read loop —
		// no goroutine, no context allocation, no cancel registration
		// (OpCancel arrives on this same loop, so it cannot race an op
		// that completes before the next read) — and cork the response
		// for the burst flush.
		start := time.Now()
		resp := sc.srv.dispatch(sc.ctx, sc, f.reqID, f.op, f.payload)
		sc.srv.observe(sc, f.op, start, resp)
		sc.send(f.reqID, f.op, resp)
		sc.deferredDone++
	case f.op == wire.OpPut && sc.srv.batcher != nil:
		return sc.handlePut(f)
	default:
		return sc.slowPath(f), nil, false
	}
	return false, nil, false
}

// inlineOp reports the ops cheap enough to answer on the read loop:
// point reads and metadata listings against a local backend. Writes,
// merges, history walks and value materialization keep the worker
// path — they can block, and a blocked read loop stalls the whole
// connection.
func (sc *serverConn) inlineOp(op uint8) bool {
	if !sc.srv.inline {
		return false
	}
	switch op {
	case wire.OpGet, wire.OpStats, wire.OpListKeys, wire.OpListBranches:
		return true
	}
	return false
}

// slowPath registers the request's cancel func and hands it to the
// worker pool. Registration happens HERE, on the read loop, before
// any worker sees the request: an OpCancel frame can arrive on this
// same loop immediately after the request, and a registration done
// inside the handler would race it — losing the cancel and walking a
// deep history for a client that already hung up. Returns whether
// f.buf's ownership moved to the task.
func (sc *serverConn) slowPath(f rawFrame) bool {
	ctx, cancel := context.WithCancel(sc.ctx)
	sc.mu.Lock()
	if _, dup := sc.inflight[f.reqID]; dup {
		sc.mu.Unlock()
		cancel()
		sc.srv.reqDone()
		// Refuse the reuse rather than overwrite: overwriting would
		// orphan the original request's cancel registration, leaking
		// its context and making it uncancelable. The original request
		// is untouched; only the duplicate frame fails.
		sc.respondErr(f.reqID, f.op, fmt.Errorf("%w: id %d", wire.ErrDuplicateRequest, f.reqID), nil, UID{})
		return false
	}
	sc.inflight[f.reqID] = cancel
	sc.mu.Unlock()
	sc.enqueueTask(serverTask{sc: sc, ctx: ctx, cancel: cancel, reqID: f.reqID, op: f.op, payload: f.payload, buf: f.buf})
	return true
}

// enqueueTask hands a task to the worker pool, blocking when the pool
// is saturated — backpressure: this connection stops reading until a
// worker frees up. A dying connection aborts the handoff and releases
// everything the task held, so Close can never hang on a full queue.
func (sc *serverConn) enqueueTask(t serverTask) {
	select {
	case sc.srv.tasks <- t:
		return
	default:
	}
	select {
	case sc.srv.tasks <- t:
	case <-sc.ctx.Done():
		sc.dropTask(t)
	}
}

// dropTask releases a task that will never run (connection died
// before the pool accepted it).
func (sc *serverConn) dropTask(t serverTask) {
	if t.batch == nil {
		sc.mu.Lock()
		delete(sc.inflight, t.reqID)
		sc.mu.Unlock()
		t.cancel()
		sc.srv.reqDone()
		wire.PutFrameBuf(t.buf)
		return
	}
	for _, pf := range t.batch {
		sc.srv.reqDone()
		wire.PutFrameBuf(pf.buf)
	}
}

func (sc *serverConn) isClosed() bool { return sc.closed.Load() }

func (sc *serverConn) isAuthed() bool { return sc.authed.Load() }

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

// admit reserves an in-flight slot for a new request unless the
// server is draining. The check and the WaitGroup Add happen under
// the same lock Shutdown takes to set draining, so once Shutdown's
// Wait begins no further Add can slip in — which is both what keeps
// the drain contract (every admitted request finishes and flushes)
// and what makes the Add/Wait pair race-free.
func (s *Server) admit() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return false
	}
	s.inflight.Add(1)
	s.met.inflight.Add(1)
	return true
}

// hello performs the version/auth handshake. Returns false when the
// connection must close (bad version or bad token).
func (sc *serverConn) hello(reqID uint64, payload []byte) bool {
	d := wire.NewDec(payload)
	version := d.U32()
	token := d.Str()
	if err := d.Err(); err != nil {
		sc.respondErr(reqID, wire.OpHello, err, nil, UID{})
		return false
	}
	if version != wire.ProtoVersion {
		sc.respondErr(reqID, wire.OpHello,
			fmt.Errorf("%w: protocol version %d, server speaks %d", wire.ErrCodec, version, wire.ProtoVersion), nil, UID{})
		return false
	}
	if sc.srv.opts.AuthToken != "" && token != sc.srv.opts.AuthToken {
		sc.respondErr(reqID, wire.OpHello, fmt.Errorf("%w: bad auth token", ErrAccessDenied), nil, UID{})
		return false
	}
	sc.authed.Store(true)
	sc.srv.met.reqs[wire.OpHello].Inc()
	e := wire.EncWith(wire.GetFrameBuf())
	e.U8(0)
	e.Str("forkbase/1")
	// Optional-capability bitmask; clients that predate it ignore the
	// trailing bytes, so this is compatible with ProtoVersion 1 peers.
	e.U32(sc.srv.features())
	sc.write(reqID, wire.OpHello, e.Bytes())
	return true
}

// handle executes one pipelined request on a pool worker.
func (sc *serverConn) handle(ctx context.Context, cancel context.CancelFunc, reqID uint64, op uint8, payload []byte) {
	start := time.Now()
	resp := sc.srv.dispatch(ctx, sc, reqID, op, payload)
	sc.srv.observe(sc, op, start, resp)
	// Unregister BEFORE the response leaves: a client is free to reuse
	// the id the moment it sees the response, and the read loop must
	// not mistake that for a duplicate.
	sc.mu.Lock()
	delete(sc.inflight, reqID)
	sc.mu.Unlock()
	cancel()
	sc.write(reqID, op, resp)
	sc.srv.reqDone()
}

// clampResp downgrades an oversized response: the frame would make
// the client drop the whole connection (stream desync), failing its
// other in-flight requests; a typed per-request error fails only this
// one.
func (sc *serverConn) clampResp(payload []byte) []byte {
	if max := wire.MaxPayload(sc.srv.opts.MaxFrame); len(payload) > max {
		wire.PutFrameBuf(payload)
		return errPayload(fmt.Errorf("response of %d bytes exceeds the %d-byte frame cap", len(payload), max), nil, UID{})
	}
	return payload
}

// write frames one response and flushes it (or leaves it with an
// in-flight flusher). It takes ownership of payload, which must come
// from the frame pool (all response payloads do: okPayload, errPayload
// and hello build on pooled buffers).
func (sc *serverConn) write(reqID uint64, op uint8, payload []byte) {
	payload = sc.clampResp(payload)
	// Write failures are sticky in the frame writer and logged by its
	// error hook; the read loop (or close) notices the dead socket.
	_ = sc.fw.writeFrame(reqID, op, payload)
	wire.PutFrameBuf(payload)
}

// send corks one response in the frame writer without flushing; the
// read loop flushes at burst end. Ownership of payload transfers, as
// with write.
func (sc *serverConn) send(reqID uint64, op uint8, payload []byte) {
	payload = sc.clampResp(payload)
	_ = sc.fw.enqueue(reqID, op, payload)
	wire.PutFrameBuf(payload)
}

func (sc *serverConn) respondErr(reqID uint64, op uint8, err error, conflicts []Conflict, uid UID) {
	sc.write(reqID, op, errPayload(err, conflicts, uid))
}

// --- request dispatch -------------------------------------------------

// okPayload and errPayload build response payloads on pooled buffers;
// serverConn.write/send return them to the pool once framed.

func okPayload(fill func(e *wire.Enc)) []byte {
	e := wire.EncWith(wire.GetFrameBuf())
	e.U8(0)
	if fill != nil {
		fill(&e)
	}
	return e.Bytes()
}

func errPayload(err error, conflicts []Conflict, uid UID) []byte {
	e := wire.EncWith(wire.GetFrameBuf())
	e.U8(1)
	wire.EncodeError(&e, err, conflicts, uid)
	return e.Bytes()
}

// callOptions reconstructs the per-call option slice a request's
// CallOptions describe — including WithUser, which is what routes the
// request through the wrapped store's access controller.
func callOptions(o wire.CallOptions) ([]Option, error) {
	var opts []Option
	if o.User != "" {
		opts = append(opts, WithUser(o.User))
	}
	if o.BranchSet {
		opts = append(opts, WithBranch(o.Branch))
	}
	for _, b := range o.Bases {
		opts = append(opts, WithBase(b))
	}
	if o.Guard != nil {
		opts = append(opts, WithGuard(*o.Guard))
	}
	if o.Meta != nil {
		opts = append(opts, WithMeta(string(o.Meta)))
	}
	if o.Resolver != wire.ResolverNone {
		r := wire.ResolverFromCode(o.Resolver)
		if r == nil {
			return nil, fmt.Errorf("%w: unknown resolver code %d", ErrBadOptions, o.Resolver)
		}
		opts = append(opts, WithResolver(r))
	}
	return opts, nil
}

// dispatch decodes one request, runs it against the wrapped store and
// returns the response payload. Decode failures — truncated or
// garbage payloads inside intact frames — fail the request, never the
// process: every decoder is bounds-checked by construction. sc is the
// originating connection: the chunk ops scope their GC shields to it,
// so a client that disconnects mid-negotiation releases whatever it
// had protected.
func (s *Server) dispatch(ctx context.Context, sc *serverConn, reqID uint64, op uint8, payload []byte) []byte {
	d := wire.NewDec(payload)
	co := wire.DecodeCallOptions(d)
	opts, err := callOptions(co)
	if err == nil {
		err = d.Err()
	}
	if err != nil {
		return errPayload(err, nil, UID{})
	}
	fail := func(err error) []byte { return errPayload(err, nil, UID{}) }
	switch op {
	case wire.OpGet:
		key := d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		o, err := s.st.Get(ctx, key, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) { wire.EncodeFObject(e, o) })
	case wire.OpPut:
		key := d.Str()
		// Zero-copy decode: the value is consumed (its staged bytes
		// copied on ingest) before the worker recycles the frame buffer.
		v, verr := wire.DecodeValueRef(d)
		if verr == nil {
			verr = d.Err()
		}
		if verr != nil {
			return fail(verr)
		}
		uid, err := s.st.Put(ctx, key, v, opts...)
		if err != nil {
			return errPayload(err, nil, uid)
		}
		return okPayload(func(e *wire.Enc) { e.UID(uid) })
	case wire.OpApply:
		n := d.Count(4)
		b := NewBatch()
		for i := 0; i < n; i++ {
			key := d.Str()
			putOpts, oerr := callOptions(wire.DecodeCallOptions(d))
			v, verr := wire.DecodeValueRef(d)
			if verr == nil {
				verr = oerr
			}
			if verr == nil {
				verr = d.Err()
			}
			if verr != nil {
				return fail(verr)
			}
			b.Put(key, v, putOpts...)
		}
		if err := d.Err(); err != nil {
			return fail(err)
		}
		uids, err := s.st.Apply(ctx, b, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) { wire.EncodeUIDs(e, uids) })
	case wire.OpFork:
		key, newBranch := d.Str(), d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		if err := s.st.Fork(ctx, key, newBranch, opts...); err != nil {
			return fail(err)
		}
		return okPayload(nil)
	case wire.OpMerge:
		key, tgt := d.Str(), d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		uid, conflicts, err := s.st.Merge(ctx, key, tgt, opts...)
		if err != nil {
			return errPayload(err, conflicts, uid)
		}
		return okPayload(func(e *wire.Enc) { e.UID(uid) })
	case wire.OpTrack:
		key := d.Str()
		from, to := int(d.I64()), int(d.I64())
		if err := d.Err(); err != nil {
			return fail(err)
		}
		hist, err := s.st.Track(ctx, key, from, to, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) {
			e.U32(uint32(len(hist)))
			for _, o := range hist {
				wire.EncodeFObject(e, o)
			}
		})
	case wire.OpDiff:
		key := d.Str()
		a, b := d.UID(), d.UID()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		df, err := s.st.Diff(ctx, key, a, b, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) { wire.EncodeDiff(e, df) })
	case wire.OpListKeys:
		keys, err := s.st.ListKeys(ctx, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) {
			e.U32(uint32(len(keys)))
			for _, k := range keys {
				e.Str(k)
			}
		})
	case wire.OpListBranches:
		key := d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		bl, err := s.st.ListBranches(ctx, key, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) {
			wire.EncodeTaggedBranches(e, bl.Tagged)
			wire.EncodeUIDs(e, bl.Untagged)
		})
	case wire.OpRenameBranch:
		key, br, newName := d.Str(), d.Str(), d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		if err := s.st.RenameBranch(ctx, key, br, newName, opts...); err != nil {
			return fail(err)
		}
		return okPayload(nil)
	case wire.OpRemoveBranch:
		key, br := d.Str(), d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		if err := s.st.RemoveBranch(ctx, key, br, opts...); err != nil {
			return fail(err)
		}
		return okPayload(nil)
	case wire.OpPin, wire.OpUnpin:
		key, uid := d.Str(), d.UID()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		var err error
		if op == wire.OpPin {
			err = s.st.Pin(ctx, key, uid, opts...)
		} else {
			err = s.st.Unpin(ctx, key, uid, opts...)
		}
		if err != nil {
			return fail(err)
		}
		return okPayload(nil)
	case wire.OpGC:
		stats, err := s.st.GC(ctx, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) { wire.EncodeGCStats(e, stats) })
	case wire.OpValue:
		key, uid := d.Str(), d.UID()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		// Only the user identity applies here: the version is named by
		// uid, and forwarding the caller's branch/base options into the
		// internal Get would redirect it to a different version (or
		// trip ErrBadOptions) — semantics the embedded Value does not
		// have.
		var userOpts []Option
		if co.User != "" {
			userOpts = append(userOpts, WithUser(co.User))
		}
		o, err := s.st.Get(ctx, key, append(userOpts[:len(userOpts):len(userOpts)], WithBase(uid))...)
		if err != nil {
			return fail(err)
		}
		v, err := s.st.Value(ctx, key, o, userOpts...)
		if err != nil {
			return fail(err)
		}
		return okPayload2(func(e *wire.Enc) error { return wire.EncodeValue(e, v) })
	case wire.OpChunkHave, wire.OpChunkWant, wire.OpChunkSend, wire.OpPutChunked:
		cb := s.chunkBack()
		if cb == nil {
			return fail(fmt.Errorf("%w: backend %T does not serve chunk-granular transfer", wire.ErrUnsupported, s.st))
		}
		return s.dispatchChunk(ctx, sc, reqID, cb, op, d, co, opts)
	case wire.OpStats:
		type statser interface{ Stats() StoreStats }
		ss, ok := s.st.(statser)
		if !ok {
			return fail(fmt.Errorf("%w: backend %T has no storage counters", wire.ErrUnsupported, s.st))
		}
		stats := ss.Stats()
		return okPayload(func(e *wire.Enc) { wire.EncodeStats(e, stats) })
	case wire.OpServerStats:
		snap := s.MetricsSnapshot()
		return okPayload(func(e *wire.Enc) { wire.EncodeSamples(e, snap) })
	}
	return fail(fmt.Errorf("%w: unhandled op %d", wire.ErrCodec, op))
}

// dispatchChunk executes the chunk-granular transfer ops. Three rules
// govern every path here:
//
//  1. Admission is verified: a chunk enters the store only if its
//     bytes hash to the id it was claimed under. A mismatch — or any
//     undecodable chunk in the batch — fails the whole request before
//     anything is admitted, so corrupt uploads cost one request and
//     leave no trace.
//  2. Negotiated chunks are shielded: an id the server reported as
//     present (OpChunkHave) or admitted (OpChunkSend) becomes a
//     transient GC root scoped to this connection, because the client
//     will rely on it when it commits. The matching OpPutChunked
//     releases the shields; a dropped connection releases the rest.
//  3. Access is per key: every chunk op carries the routing key being
//     read or written and runs the same ACL check the materialized op
//     would. Within a granted key, chunk ids act as capabilities —
//     the server cannot cheaply prove a content-addressed chunk
//     "belongs" to a key, and does not try (see README, trust model).
func (s *Server) dispatchChunk(ctx context.Context, sc *serverConn, reqID uint64, cb chunkBackend, op uint8, d *wire.Dec, co wire.CallOptions, opts []Option) []byte {
	fail := func(err error) []byte { return errPayload(err, nil, UID{}) }
	cs := cb.chunkStore()
	switch op {
	case wire.OpChunkHave:
		key := d.Str()
		ids := wire.DecodeUIDs(d)
		if err := d.Err(); err != nil {
			return fail(err)
		}
		// Have is the upload negotiation, so it needs write intent —
		// a read-only user learns nothing about what the store holds.
		if err := cb.checkChunkAccess(co.User, key, true); err != nil {
			return fail(err)
		}
		bits := make([]bool, len(ids))
		var present []chunk.ID
		seen := make(map[chunk.ID]bool, len(ids))
		for i, id := range ids {
			if cs.Has(id) {
				bits[i] = true
				if !seen[id] {
					seen[id] = true
					present = append(present, id)
				}
			}
		}
		// The client will skip re-sending these; keep them alive until
		// its commit (or disconnect).
		sc.addShields(cb, present)
		s.met.chunksync[csHave].Add(int64(len(ids) * chunk.IDSize))
		return okPayload(func(e *wire.Enc) { wire.EncodeBitmap(e, bits) })
	case wire.OpChunkWant:
		key := d.Str()
		ids := wire.DecodeUIDs(d)
		// Optional trailing flags byte: absent from classic clients,
		// whose requests therefore take the prefix-answering path below
		// unchanged.
		var flags uint8
		if d.Err() == nil && d.Rest() > 0 {
			flags = d.U8()
		}
		if err := d.Err(); err != nil {
			return fail(err)
		}
		if err := cb.checkChunkAccess(co.User, key, false); err != nil {
			return fail(err)
		}
		if flags&(wire.WantFlagStream|wire.WantFlagDeep) != 0 {
			return sc.streamWant(ctx, reqID, cs, ids, flags)
		}
		// Answer a prefix of the request, stopping before the response
		// would overflow the frame cap; the client re-requests the
		// tail. Half the cap leaves comfortable room for per-chunk
		// framing no matter how the sizes fall.
		budget := wire.MaxPayload(s.opts.MaxFrame) / 2
		var answered []*chunk.Chunk
		total := 0
		for _, id := range ids {
			if err := ctx.Err(); err != nil {
				return fail(err)
			}
			c, err := store.GetVerified(cs, id)
			if errors.Is(err, store.ErrNotFound) {
				answered = append(answered, nil)
				continue
			}
			if err != nil {
				return fail(err)
			}
			if total+c.Size() > budget && len(answered) > 0 {
				break
			}
			answered = append(answered, c)
			total += c.Size()
		}
		s.met.chunksync[csWant].Add(int64(total))
		return okPayload(func(e *wire.Enc) { wire.EncodeWantResponse(e, answered) })
	case wire.OpChunkSend:
		key := d.Str()
		frames := wire.DecodeChunkUpload(d)
		if err := d.Err(); err != nil {
			return fail(err)
		}
		if err := cb.checkChunkAccess(co.User, key, true); err != nil {
			return fail(err)
		}
		// Verify the whole batch before admitting any of it.
		decoded := make([]*chunk.Chunk, 0, len(frames))
		var ids []chunk.ID
		seen := make(map[chunk.ID]bool, len(frames))
		for _, f := range frames {
			c, err := chunk.Decode(f.Bytes)
			if err != nil {
				return fail(fmt.Errorf("%w: undecodable chunk claimed as %s: %v", store.ErrCorrupt, f.ID.Short(), err))
			}
			if c.ID() != f.ID {
				return fail(fmt.Errorf("%w: chunk claimed as %s hashes to %s", store.ErrCorrupt, f.ID.Short(), c.ID().Short()))
			}
			decoded = append(decoded, c)
			if !seen[c.ID()] {
				seen[c.ID()] = true
				ids = append(ids, c.ID())
			}
		}
		// Shield before Put: a collection sweeping between the Put and
		// the commit must treat these as roots.
		sc.addShields(cb, ids)
		var stored, dups uint32
		var admitted int64
		for _, c := range decoded {
			dup, err := cs.Put(c)
			if err != nil {
				return fail(err)
			}
			if dup {
				dups++
			} else {
				stored++
				admitted += int64(c.Size())
			}
		}
		s.met.chunksync[csSend].Add(admitted)
		return okPayload(func(e *wire.Enc) {
			e.U32(stored)
			e.U32(dups)
		})
	case wire.OpPutChunked:
		key := d.Str()
		vt := types.Type(d.U8())
		root := d.UID()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		kind, ok := types.KindOfType(vt)
		if !ok {
			return fail(fmt.Errorf("%w: type %v is not chunkable", ErrBadOptions, vt))
		}
		if err := cb.checkChunkAccess(co.User, key, true); err != nil {
			return fail(err)
		}
		// Load derives count and height by walking the root path —
		// trusting the client's claimed shape would let it commit a
		// version whose meta chunk misdescribes the tree.
		tree, err := postree.Load(cs, cb.treeConfig(), kind, root)
		if err != nil {
			return fail(fmt.Errorf("chunked put of %s: %w", root.Short(), err))
		}
		// The tree must be complete before the commit: every index node
		// must decode and every leaf must exist. The walked id set is
		// also exactly what this connection's shields protect for this
		// value, so it doubles as the release list.
		var ids []chunk.ID
		err = tree.WalkChunkIDs(func(id chunk.ID, isLeaf bool) error {
			ids = append(ids, id)
			if isLeaf && !cs.Has(id) {
				return fmt.Errorf("chunked put: leaf %s: %w (upload incomplete)", id.Short(), store.ErrNotFound)
			}
			return nil
		})
		if err != nil {
			// Leave the shields in place: the client can finish the
			// upload and retry; disconnect still releases them.
			return fail(err)
		}
		v, _ := types.AttachValue(vt, tree)
		uid, perr := s.st.Put(ctx, key, v, opts...)
		// Success or failure, the negotiation window is over: on
		// success the new version roots the chunks; on failure the
		// client renegotiates from OpChunkHave, which re-shields.
		sc.dropShields(cb, ids)
		if perr != nil {
			return errPayload(perr, nil, uid)
		}
		return okPayload(func(e *wire.Enc) { e.UID(uid) })
	}
	return fail(fmt.Errorf("%w: unhandled chunk op %d", wire.ErrCodec, op))
}

// wantPartTarget is the payload size a streamed Want aims for per
// OpChunkWantPart frame: large enough to amortize framing, small
// enough that the first part leaves the server long before the last
// chunk has been read from disk.
const wantPartTarget = 256 << 10

// streamWant answers one OpChunkWant request in streaming mode:
// chunks ship in bounded OpChunkWantPart frames as they are read, and
// the returned payload — written by the caller under op OpChunkWant —
// terminates the stream with the usual status byte, so a mid-stream
// failure (or an OpCancel) still costs exactly this request and
// nothing else on the connection. With WantFlagDeep the requested ids
// are POS-Tree roots whose whole reachable subtree is streamed —
// a cold read in one round trip — skipping ids the server does not
// hold (the client's pull sweep owns completeness, exactly as it does
// for classic answers).
func (sc *serverConn) streamWant(ctx context.Context, reqID uint64, cs store.Store, ids []chunk.ID, flags uint8) []byte {
	fail := func(err error) []byte { return errPayload(err, nil, UID{}) }
	target := wantPartTarget
	if max := wire.MaxPayload(sc.srv.opts.MaxFrame) / 2; max < target {
		target = max
	}
	var (
		part     []*chunk.Chunk
		partSize int
		streamed uint32
	)
	flushPart := func() {
		if len(part) == 0 {
			return
		}
		e := wire.EncWith(wire.GetFrameBuf())
		wire.EncodeChunkUpload(&e, part)
		sc.write(reqID, wire.OpChunkWantPart, e.Bytes())
		sc.srv.met.chunksync[csStream].Add(int64(partSize))
		part, partSize = part[:0], 0
	}
	deep := flags&wire.WantFlagDeep != 0
	queue := append([]chunk.ID(nil), ids...)
	seen := make(map[chunk.ID]bool, len(queue))
	for i := 0; i < len(queue); i++ {
		// Per-chunk cancellation: an OpCancel (or the client hanging
		// up) stops a long stream mid-way; the error frame returned
		// here still terminates it, so the consumer always sees a
		// final frame.
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		id := queue[i]
		if seen[id] {
			continue
		}
		seen[id] = true
		c, err := store.GetVerified(cs, id)
		if errors.Is(err, store.ErrNotFound) {
			// Ids the server does not hold are simply not streamed; the
			// client treats unanswered ids as absent, matching the
			// classic response's present=false.
			continue
		}
		if err != nil {
			return fail(err)
		}
		if partSize+c.Size() > target {
			flushPart()
		}
		part = append(part, c)
		partSize += c.Size()
		streamed++
		if deep && (c.Type() == chunk.TypeUIndex || c.Type() == chunk.TypeSIndex) {
			kids, err := postree.IndexChildIDs(c.Data())
			if err != nil {
				return fail(err)
			}
			queue = append(queue, kids...)
		}
	}
	flushPart()
	return okPayload(func(e *wire.Enc) { e.U32(streamed) })
}

// okPayload2 is okPayload for encoders that can fail mid-way (value
// materialization reads chunks); the failure downgrades the response
// to an error payload.
func okPayload2(fill func(e *wire.Enc) error) []byte {
	e := wire.EncWith(wire.GetFrameBuf())
	e.U8(0)
	if err := fill(&e); err != nil {
		wire.PutFrameBuf(e.Bytes())
		return errPayload(err, nil, UID{})
	}
	return e.Bytes()
}

// --- put coalescing ---------------------------------------------------

// maxPutBatch bounds one coalesced batch; past this the marginal
// amortization is nil and the per-batch bookkeeping slices grow.
const maxPutBatch = 64

// putFrame is one OpPut decoded through its key, awaiting batch
// execution; the value decode happens on the worker. payload and key
// context alias buf, which the batch owns until its responses flush.
type putFrame struct {
	reqID    uint64
	key      string
	co       wire.CallOptions
	valueOff int
	payload  []byte
	buf      []byte
}

// decodePutFrame splits an OpPut payload into its routing prefix and
// the offset where the value encoding starts.
func decodePutFrame(f rawFrame) (putFrame, bool) {
	d := wire.NewDec(f.payload)
	co := wire.DecodeCallOptions(d)
	key := d.Str()
	if d.Err() != nil {
		return putFrame{}, false
	}
	return putFrame{
		reqID:    f.reqID,
		key:      key,
		co:       co,
		valueOff: len(f.payload) - d.Rest(),
		payload:  f.payload,
		buf:      f.buf,
	}, true
}

// coalescible reports whether a decoded put can join a batch at all:
// no version bases (base puts have fork semantics the batch engine
// does not model) and a clean routing decode.
func coalescible(pf putFrame, ok bool) bool {
	return ok && len(pf.co.Bases) == 0
}

// handlePut serves one admitted OpPut. When more complete frames are
// already buffered behind it, adjacent coalescible puts — same user,
// distinct keys, no bases — are collected into a single worker task
// that runs them as one engine batch: one lock hold and one branch
// update per key, one response flush for the lot, with per-put errors
// so the batch is observationally identical to dispatching each put
// alone. A put that cannot join (or has nothing behind it) takes the
// normal slow path.
func (sc *serverConn) handlePut(f rawFrame) (keep bool, carry *rawFrame, exit bool) {
	first, ok := decodePutFrame(f)
	if !coalescible(first, ok) || !wire.FrameBuffered(sc.br) {
		return sc.slowPath(f), nil, false
	}
	batch := []putFrame{first}
	keys := map[string]bool{first.key: true}
	for len(batch) < maxPutBatch && wire.FrameBuffered(sc.br) {
		nf, err := sc.readFrame()
		if err != nil {
			// A framing violation kills the connection, but the puts
			// already collected were admitted and must still execute
			// (and flush) under the drain contract.
			wire.PutFrameBuf(nf.buf)
			if !errors.Is(err, io.EOF) && !sc.isClosed() {
				sc.srv.logf("forkserved: %s: %v", sc.c.RemoteAddr(), err)
			}
			exit = true
			break
		}
		if nf.op != wire.OpPut {
			// Not a put: hand it back to the read loop, in order.
			carry = &nf
			break
		}
		if !sc.srv.admit() {
			sc.respondErr(nf.reqID, nf.op, ErrServerClosed, nil, UID{})
			wire.PutFrameBuf(nf.buf)
			break
		}
		pf, ok := decodePutFrame(nf)
		if !coalescible(pf, ok) || pf.co.User != first.co.User || keys[pf.key] {
			// Cannot join (different identity, duplicate key — the
			// engine batch would chain same-key puts, changing their
			// guard semantics — or base/undecodable put): dispatch it
			// alone on the worker pool and stop collecting.
			if !sc.slowPath(nf) {
				wire.PutFrameBuf(nf.buf)
			}
			break
		}
		keys[pf.key] = true
		batch = append(batch, pf)
	}
	if len(batch) == 1 {
		return sc.slowPath(f), carry, exit
	}
	sc.enqueueTask(serverTask{sc: sc, user: first.co.User, batch: batch})
	return true, carry, exit
}

// runPutBatch executes one coalesced batch on a pool worker: decode
// each value (zero-copy — the engine copies on ingest), one batched
// engine commit with per-put error isolation, then all responses in
// one flush.
func (sc *serverConn) runPutBatch(user string, batch []putFrame) {
	start := time.Now()
	sc.srv.met.putBatch.Observe(int64(len(batch)))
	resp := make([][]byte, len(batch))
	puts := make([]core.BatchPut, 0, len(batch))
	idx := make([]int, 0, len(batch))
	for i, pf := range batch {
		d := wire.NewDec(pf.payload[pf.valueOff:])
		v, err := wire.DecodeValueRef(d)
		if err == nil && pf.co.Resolver != wire.ResolverNone && wire.ResolverFromCode(pf.co.Resolver) == nil {
			// Mirror the slow path's option validation: Put ignores
			// resolvers, but an unknown code is still a typed error.
			err = fmt.Errorf("%w: unknown resolver code %d", ErrBadOptions, pf.co.Resolver)
		}
		if err != nil {
			resp[i] = errPayload(err, nil, UID{})
			continue
		}
		branch := DefaultBranch
		if pf.co.BranchSet {
			branch = pf.co.Branch
		}
		var guard *UID
		if pf.co.Guard != nil {
			g := *pf.co.Guard
			guard = &g
		}
		puts = append(puts, core.BatchPut{Key: []byte(pf.key), Branch: branch, Value: v, Meta: pf.co.Meta, Guard: guard})
		idx = append(idx, i)
	}
	uids, errs := sc.srv.batcher.putBatchServer(sc.ctx, user, puts)
	for j, i := range idx {
		if errs[j] != nil {
			resp[i] = errPayload(errs[j], nil, UID{})
		} else {
			uid := uids[j]
			resp[i] = okPayload(func(e *wire.Enc) { e.UID(uid) })
		}
	}
	elapsed := time.Since(start)
	for i, pf := range batch {
		// Each coalesced put is observed as its own OpPut — the batch
		// is an execution detail, invisible in the per-op series — with
		// the batch's elapsed time as every member's latency (they did
		// all wait for the batch).
		sc.srv.observeDur(sc, wire.OpPut, elapsed, resp[i])
		sc.send(pf.reqID, wire.OpPut, resp[i])
		wire.PutFrameBuf(pf.buf)
	}
	sc.fw.flush()
	for range batch {
		sc.srv.reqDone()
	}
}
