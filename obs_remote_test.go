package forkbase_test

// Observability end-to-end: the OpServerStats round trip, graceful
// degradation against pre-stats peers, the WireStats shim's agreement
// with the obs counters on both ends, and the slow-op log.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"forkbase"
	"forkbase/internal/obs"
)

// sampleValue finds one sample by name and tags; ok reports presence.
func sampleValue(samples []forkbase.MetricSample, name, tags string) (forkbase.MetricSample, bool) {
	for _, s := range samples {
		if s.Name == name && s.Tags == tags {
			return s, true
		}
	}
	return forkbase.MetricSample{}, false
}

// TestObsServerStatsRoundTrip drives real traffic at a live server and
// reads the merged snapshot back over the wire: per-op counters and
// latency histograms from the server registry, store metrics from the
// embedded DB's.
func TestObsServerStatsRoundTrip(t *testing.T) {
	ctx := context.Background()
	addr, _ := startServer(t, forkbase.Open(), forkbase.ServerOptions{})
	rs, err := forkbase.Dial(addr, forkbase.RemoteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	const puts = 5
	for i := 0; i < puts; i++ {
		if _, err := rs.Put(ctx, "k", forkbase.String(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rs.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Get(ctx, "no such key"); err == nil {
		t.Fatal("expected an error for a missing key")
	}

	samples, err := rs.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := sampleValue(samples, "forkbase_server_requests_total", `op="put"`); !ok || s.Value < puts {
		t.Fatalf("put request counter = %+v (present=%v), want >= %d", s, ok, puts)
	}
	if s, ok := sampleValue(samples, "forkbase_server_requests_total", `op="get"`); !ok || s.Value < 2 {
		t.Fatalf("get request counter = %+v (present=%v), want >= 2", s, ok)
	}
	if s, ok := sampleValue(samples, "forkbase_server_request_errors_total", `op="get"`); !ok || s.Value < 1 {
		t.Fatalf("get error counter = %+v (present=%v), want >= 1", s, ok)
	}
	if s, ok := sampleValue(samples, "forkbase_server_errors_by_code_total", `code="key_not_found"`); !ok || s.Value < 1 {
		t.Fatalf("key_not_found code counter = %+v (present=%v), want >= 1", s, ok)
	}
	lat, ok := sampleValue(samples, "forkbase_server_latency_ns", `op="put"`)
	if !ok || lat.Kind != obs.KindHistogram {
		t.Fatalf("put latency histogram missing or wrong kind: %+v (present=%v)", lat, ok)
	}
	if lat.Value < puts || lat.Sum <= 0 || lat.Quantile(0.5) <= 0 {
		t.Fatalf("put latency histogram not populated: count=%d sum=%d p50=%d", lat.Value, lat.Sum, lat.Quantile(0.5))
	}
	// The embedded DB's engine/store metrics ride the same snapshot.
	if s, ok := sampleValue(samples, "forkbase_store_puts_total", ""); !ok || s.Value <= 0 {
		t.Fatalf("store puts counter = %+v (present=%v), want > 0", s, ok)
	}
	// Wire byte counters move in both directions.
	for _, dir := range []string{`dir="in"`, `dir="out"`} {
		if s, ok := sampleValue(samples, "forkbase_server_wire_bytes_total", dir); !ok || s.Value <= 0 {
			t.Fatalf("server wire bytes %s = %+v (present=%v), want > 0", dir, s, ok)
		}
	}
	// Snapshots are sorted by name then tags — stable scrape output.
	for i := 1; i < len(samples); i++ {
		a, b := samples[i-1], samples[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Tags > b.Tags) {
			t.Fatalf("snapshot out of order at %d: %s/%s after %s/%s", i, b.Name, b.Tags, a.Name, a.Tags)
		}
	}
}

// TestObsServerStatsPreFeature simulates a peer that predates the
// stats op: the call must fail locally with ErrUnsupported, without
// touching the wire.
func TestObsServerStatsPreFeature(t *testing.T) {
	ctx := context.Background()
	addr, _ := startServer(t, forkbase.Open(), forkbase.ServerOptions{})
	rs, err := forkbase.Dial(addr, forkbase.RemoteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	rs.DropServerStatsFeatureForTest()
	before := rs.WireStats()
	if _, err := rs.ServerStats(ctx); !errors.Is(err, forkbase.ErrUnsupported) {
		t.Fatalf("ServerStats against a pre-stats peer: err = %v, want ErrUnsupported", err)
	}
	if after := rs.WireStats(); after.BytesSent != before.BytesSent {
		t.Fatalf("ServerStats moved %d bytes against a pre-stats peer; must fail locally", after.BytesSent-before.BytesSent)
	}
}

// TestObsWireBytesAgree cross-checks the byte accounting end to end:
// the client's deprecated WireStats shim must agree with its obs
// counters, and — since every frame either end writes passes through
// one counted chokepoint — the client's sent bytes must equal the
// server's received bytes and vice versa once the connection is idle.
func TestObsWireBytesAgree(t *testing.T) {
	ctx := context.Background()
	addr, srv := startServer(t, forkbase.Open(), forkbase.ServerOptions{})
	rs, err := forkbase.Dial(addr, forkbase.RemoteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	for i := 0; i < 8; i++ {
		if _, err := rs.Put(ctx, "k", forkbase.String(strings.Repeat("x", 100+i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rs.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}

	ws := rs.WireStats()
	if ws.BytesSent <= 0 || ws.BytesReceived <= 0 {
		t.Fatalf("WireStats = %+v, want both positive", ws)
	}
	cs := rs.MetricsSnapshot()
	if s, ok := sampleValue(cs, "forkbase_client_wire_bytes_total", `dir="out"`); !ok || s.Value != ws.BytesSent {
		t.Fatalf("client out counter = %+v (present=%v), want %d (WireStats shim must read the obs counters)", s, ok, ws.BytesSent)
	}
	if s, ok := sampleValue(cs, "forkbase_client_wire_bytes_total", `dir="in"`); !ok || s.Value != ws.BytesReceived {
		t.Fatalf("client in counter = %+v (present=%v), want %d", s, ok, ws.BytesReceived)
	}
	if s, ok := sampleValue(cs, "forkbase_client_requests_total", `op="put"`); !ok || s.Value < 8 {
		t.Fatalf("client put counter = %+v (present=%v), want >= 8", s, ok)
	}
	if s, ok := sampleValue(cs, "forkbase_client_latency_ns", `op="put"`); !ok || s.Kind != obs.KindHistogram || s.Value < 8 {
		t.Fatalf("client put latency = %+v (present=%v), want histogram with >= 8 observations", s, ok)
	}

	// Both ends count at their socket chokepoints, so with all
	// responses received the totals must meet exactly. The client's
	// flusher increments its counter just after the write syscall
	// returns, so allow a brief settle.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ws = rs.WireStats()
		ss := srv.MetricsSnapshot()
		in, _ := sampleValue(ss, "forkbase_server_wire_bytes_total", `dir="in"`)
		out, _ := sampleValue(ss, "forkbase_server_wire_bytes_total", `dir="out"`)
		if ws.BytesSent == in.Value && ws.BytesReceived == out.Value {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("byte accounting disagrees: client sent=%d server in=%d; client recv=%d server out=%d",
				ws.BytesSent, in.Value, ws.BytesReceived, out.Value)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestObsSlowOpLog sets an absurdly low threshold so every op is slow,
// and checks the log line carries the op name, duration and status.
func TestObsSlowOpLog(t *testing.T) {
	ctx := context.Background()
	var mu sync.Mutex
	var lines []string
	opts := forkbase.ServerOptions{
		SlowOpThreshold: time.Nanosecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	}
	addr, _ := startServer(t, forkbase.Open(), opts)
	rs, err := forkbase.Dial(addr, forkbase.RemoteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	if _, err := rs.Put(ctx, "k", forkbase.String("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Get(ctx, "missing"); err == nil {
		t.Fatal("expected an error for a missing key")
	}

	mu.Lock()
	defer mu.Unlock()
	var sawOK, sawErr bool
	for _, l := range lines {
		if strings.Contains(l, "slow op put") && strings.Contains(l, "ok") {
			sawOK = true
		}
		if strings.Contains(l, "slow op get") && strings.Contains(l, "error=key_not_found") {
			sawErr = true
		}
	}
	if !sawOK || !sawErr {
		t.Fatalf("slow-op log missing expected lines (ok=%v err=%v): %q", sawOK, sawErr, lines)
	}
}
