package forkbase

import (
	"forkbase/internal/store"
	"forkbase/internal/wire"
)

// DropChunkCacheForTest replaces the client chunk cache with an empty
// one, simulating a cache that lost its contents between attaching a
// value handle and reading it (a cleaned cache directory, a collected
// cache). Handle reads after this must take the lazy-fetch path.
func (rs *RemoteStore) DropChunkCacheForTest() {
	if rs.local != nil {
		rs.local = store.NewCache(store.NewMemStore(), 64<<20)
	}
}

// DropServerStatsFeatureForTest clears FeatureServerStats from the
// client's view of the server's Hello, simulating a peer that predates
// the stats op. ServerStats must then degrade gracefully: a local
// ErrUnsupported, no bytes on the wire.
func (rs *RemoteStore) DropServerStatsFeatureForTest() {
	rs.features.Store(rs.features.Load() &^ wire.FeatureServerStats)
}
