package forkbase

import "forkbase/internal/store"

// DropChunkCacheForTest replaces the client chunk cache with an empty
// one, simulating a cache that lost its contents between attaching a
// value handle and reading it (a cleaned cache directory, a collected
// cache). Handle reads after this must take the lazy-fetch path.
func (rs *RemoteStore) DropChunkCacheForTest() {
	if rs.local != nil {
		rs.local = store.NewCache(store.NewMemStore(), 64<<20)
	}
}
