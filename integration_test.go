package forkbase_test

// End-to-end scenario tests driving the public API the way the paper's
// three applications do: multi-branch collaboration over large values,
// conflict handling, history audits, and durability of versions across
// a store reopen.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	forkbase "forkbase"

	"forkbase/internal/workload"
)

var tctx = context.Background()

// TestCollaborationScenario walks a full collaborative workflow: a
// shared document, two analysts on private branches, concurrent edits,
// a conflicting edit resolved at merge time, and a final history audit.
func TestCollaborationScenario(t *testing.T) {
	db := forkbase.Open()
	defer db.Close()
	rng := rand.New(rand.NewSource(9))
	doc := workload.RandText(rng, 100<<10)

	if _, err := db.Put(tctx, "report", forkbase.NewBlob(doc)); err != nil {
		t.Fatal(err)
	}
	for _, branch := range []string{"alice", "bob"} {
		if err := db.Fork(tctx, "report", branch); err != nil {
			t.Fatal(err)
		}
	}

	// Alice edits the head of the document, Bob the tail; disjoint
	// regions so the merge can reconcile chunk-wise... but Blob merges
	// are whole-value, so this documents the conflict path too.
	edit := func(branch string, off int, text string) {
		o, err := db.GetBranch("report", branch)
		if err != nil {
			t.Fatal(err)
		}
		b, err := db.BlobOf(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Splice(uint64(off), uint64(len(text)), []byte(text)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.PutBranch("report", branch, b); err != nil {
			t.Fatal(err)
		}
	}
	edit("alice", 0, "[alice wrote the intro]")
	edit("bob", 90<<10, "[bob wrote the conclusion]")

	// Both branches evolved from the same base: LCA finds it.
	ao, _ := db.GetBranch("report", "alice")
	bo, _ := db.GetBranch("report", "bob")
	lca, err := db.LCA(ao.UID(), bo.UID())
	if err != nil {
		t.Fatal(err)
	}
	master, _ := db.GetBranch("report", "master")
	if lca.UID() != master.UID() {
		t.Fatal("LCA of the two branches is not the fork point")
	}

	// A whole-object conflict: both changed the blob. Resolve by
	// choosing Bob's, then verify the winner's content.
	_, conflicts, err := db.Merge(tctx, "report", "alice", forkbase.WithBranch("bob"))
	if !errors.Is(err, forkbase.ErrConflict) || len(conflicts) != 1 {
		t.Fatalf("expected 1 whole-object conflict, got %v %v", err, conflicts)
	}
	uid, _, err := db.Merge(tctx, "report", "alice", forkbase.WithBranch("bob"), forkbase.WithResolver(forkbase.ChooseB))
	if err != nil {
		t.Fatal(err)
	}
	mo, _ := db.GetUID(uid)
	mb, _ := db.BlobOf(mo)
	content, _ := mb.Bytes()
	if !bytes.Contains(content, []byte("[bob wrote the conclusion]")) {
		t.Fatal("merge result lost the chosen side")
	}
	if len(mo.Bases) != 2 {
		t.Fatal("merge node must derive from both heads")
	}

	// Audit: alice's branch history hash-chains back to the original.
	head, _ := db.GetBranch("report", "alice")
	if _, err := db.VerifyHistory(head); err != nil {
		t.Fatal(err)
	}
}

// TestStructuredCollaboration does the same over a Map dataset, where
// element-wise merge reconciles disjoint key edits without conflicts.
func TestStructuredCollaboration(t *testing.T) {
	db := forkbase.Open()
	defer db.Close()
	m := forkbase.NewMap()
	for i := 0; i < 5000; i++ {
		m.Set([]byte(fmt.Sprintf("row-%06d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if _, err := db.Put(tctx, "dataset", m); err != nil {
		t.Fatal(err)
	}
	db.Fork(tctx, "dataset", "cleaning")
	db.Fork(tctx, "dataset", "enrichment")

	update := func(branch, key, val string) {
		o, _ := db.GetBranch("dataset", branch)
		mm, _ := db.MapOf(o)
		if err := mm.Set([]byte(key), []byte(val)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.PutBranch("dataset", branch, mm); err != nil {
			t.Fatal(err)
		}
	}
	update("cleaning", "row-000100", "cleaned")
	update("enrichment", "row-004000", "enriched")
	update("enrichment", "row-new-1", "added")

	// Merge both lines of work back into master without conflicts.
	if _, _, err := db.Merge(tctx, "dataset", "master", forkbase.WithBranch("cleaning")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Merge(tctx, "dataset", "master", forkbase.WithBranch("enrichment")); err != nil {
		t.Fatal(err)
	}
	o, _ := db.Get(tctx, "dataset")
	mm, _ := db.MapOf(o)
	for key, want := range map[string]string{
		"row-000100": "cleaned",
		"row-004000": "enriched",
		"row-new-1":  "added",
		"row-000000": "v0",
	} {
		v, ok, err := mm.Get([]byte(key))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("master[%s] = %q ok=%v err=%v, want %q", key, v, ok, err, want)
		}
	}
	if mm.Len() != 5001 {
		t.Fatalf("master has %d rows, want 5001", mm.Len())
	}
}

// TestDurabilityAcrossReopen verifies that every version written to a
// file-backed store remains readable — and tamper-evident — after the
// process "restarts".
func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := forkbase.OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	var uids []forkbase.UID
	var contents [][]byte
	data := workload.RandText(rng, 64<<10)
	for v := 0; v < 10; v++ {
		copy(data[v*1000:], fmt.Sprintf("revision-%03d", v))
		uid, err := db.Put(tctx, "doc", forkbase.NewBlob(data))
		if err != nil {
			t.Fatal(err)
		}
		uids = append(uids, uid)
		contents = append(contents, append([]byte(nil), data...))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := forkbase.OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for v, uid := range uids {
		o, err := db2.GetUID(uid)
		if err != nil {
			t.Fatalf("version %d lost: %v", v, err)
		}
		b, err := db2.BlobOf(o)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, contents[v]) {
			t.Fatalf("version %d corrupt after reopen", v)
		}
	}
	// The full derivation chain survives and verifies.
	head, err := db2.GetUID(uids[len(uids)-1])
	if err != nil {
		t.Fatal(err)
	}
	n, err := db2.VerifyHistory(head)
	if err != nil || n != 10 {
		t.Fatalf("history after reopen: %d %v", n, err)
	}
	// Dedup across versions carried to disk: ten 64 KB versions with
	// small deltas must occupy far less than ten full copies.
	if got := db2.Stats().Bytes; got > 5*64<<10 {
		t.Fatalf("on-disk footprint %d for 10 near-identical 64KB versions", got)
	}
}
