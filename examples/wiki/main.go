// The wiki example runs the §5.2 wiki engine on ForkBase: pages are
// Blobs whose version history is the derivation chain. It shows how
// small edits share almost all chunks with prior versions (the storage
// advantage of Figure 13b), how a client's chunk cache makes reading
// consecutive versions cheap (Figure 14), and how the POS-Tree diff
// compares versions without reading unchanged chunks.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"forkbase"
	"forkbase/internal/wiki"
	"forkbase/internal/workload"
)

func main() {
	ctx := context.Background()
	db := forkbase.Open()
	defer db.Close()
	engine := wiki.NewForkBase(db, wiki.FetchModel{})
	author := wiki.NewClient()

	// Create a 60 KB article and edit it five times.
	rng := rand.New(rand.NewSource(1))
	content := workload.RandText(rng, 60<<10)
	if err := engine.Save(ctx, author, "go-programming", content); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved initial article (%d KB), storage %s\n", len(content)>>10, db.Stats())

	for i := 0; i < 5; i++ {
		edit := workload.WikiEdit{
			Page:    "go-programming",
			Offset:  10000 * (i + 1),
			Content: []byte(fmt.Sprintf("== revision %d inserted this section ==", i+1)),
		}
		if err := engine.Edit(ctx, author, edit); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after 5 edits (6 full versions retained), storage %s\n", db.Stats())
	fmt.Println("a copy-per-version store would hold", 6*len(content)>>10, "KB of page data")

	// Diff the two newest versions chunk-wise.
	shared, distinct, err := engine.Diff(ctx, "go-programming")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiff of last two versions: %d chunks shared, %d distinct\n", shared, distinct)

	// The page's revision log, straight off the unified Store API: each
	// version carries the engine's timestamp in its context field.
	hist, err := db.Track(context.Background(), "go-programming", 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnewest revisions:")
	for i, o := range hist {
		fmt.Printf("  -%d: version %s (saved %s)\n", i, o.UID().Short(), o.Context)
	}

	// A reader explores the page's history; thanks to the client chunk
	// cache, each additional version ships only its unshared chunks.
	reader := wiki.NewClient()
	for back := 0; back < 6; back++ {
		before := engine.BytesFetched()
		v, err := engine.LoadVersion(ctx, reader, "go-programming", back)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("version -%d: %2d KB content, %5d new bytes fetched\n",
			back, len(v)>>10, engine.BytesFetched()-before)
	}
}
