// The blockchain example runs the mini-Hyperledger ledger of §5.1 on
// ForkBase's native data model (two levels of Maps plus a Blob per
// state, Figure 7b), commits a small chain of key-value transactions,
// then runs the two analytical queries the paper uses to show the
// storage is "analytics-ready": a state scan (history of one account)
// and a block scan (all balances at a past block) — without any chain
// pre-processing.
//
// The ledger is written against the unified forkbase.Store API, so the
// same backend runs embedded or distributed; pass -cluster to commit
// the chain through a simulated 4-servlet cluster instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"forkbase"
	"forkbase/internal/blockchain"
)

func main() {
	ctx := context.Background()
	clustered := flag.Bool("cluster", false, "run the ledger on a simulated 4-servlet cluster")
	flag.Parse()

	var st forkbase.Store
	var db *forkbase.DB
	if *clustered {
		cc, err := forkbase.OpenCluster(forkbase.ClusterConfig{Nodes: 4, TwoLayer: true})
		if err != nil {
			log.Fatal(err)
		}
		st = cc
		fmt.Println("ledger on a simulated 4-servlet cluster")
	} else {
		db = forkbase.Open()
		st = db
	}
	defer st.Close()
	backend := blockchain.NewNative(st, "token")
	ledger := blockchain.NewLedger(backend, 2) // tiny blocks for the demo

	transfer := func(from, to string, amount int) blockchain.Tx {
		return blockchain.Tx{Contract: "token", Ops: []blockchain.Op{
			{Key: from, Value: []byte(fmt.Sprintf("balance-%d", 100-amount))},
			{Key: to, Value: []byte(fmt.Sprintf("balance-%d", amount))},
		}}
	}
	txs := []blockchain.Tx{
		transfer("alice", "bob", 10),
		transfer("alice", "carol", 20),
		transfer("bob", "carol", 5),
		transfer("carol", "alice", 15),
		transfer("bob", "alice", 30),
		transfer("carol", "bob", 25),
	}
	for _, tx := range txs {
		if err := ledger.Submit(ctx, tx); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("committed %d blocks\n", ledger.Height())
	for i := 0; i < ledger.Height(); i++ {
		b := ledger.Block(i)
		fmt.Printf("  block %d  txs=%d  hash=%x...\n", b.Height, b.NumTxs, b.Hash[:6])
	}
	if err := ledger.VerifyChain(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("hash chain verified")

	// State scan: alice's balance history, newest first, straight off
	// the Blob's derivation chain (§5.1.3).
	hist, err := backend.StateScan(ctx, "alice", 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstate scan: alice has %d versions\n", len(hist))
	for i, v := range hist {
		fmt.Printf("  -%d: %s\n", i, v)
	}

	// Block scan: every state as of block 1.
	states, err := backend.BlockScan(ctx, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nblock scan at height 1: %d states\n", len(states))
	for _, k := range []string{"alice", "bob", "carol"} {
		if v, ok := states[k]; ok {
			fmt.Printf("  %s = %s\n", k, v)
		}
	}
	if db != nil {
		fmt.Printf("\nstorage: %s\n", db.Stats())
	}
}
