// The collab example is the collaborative-analytics workflow of §5.3:
// a shared relational dataset on ForkBase, forked by two analysts with
// different goals, edited independently, compared with the POS-Tree
// diff, and queried with layout-appropriate scans.
package main

import (
	"context"
	"fmt"
	"log"

	"forkbase"
	"forkbase/internal/tabular"
	"forkbase/internal/workload"
)

func main() {
	ctx := context.Background()
	db := forkbase.Open()
	defer db.Close()

	records := workload.Dataset(7, 20_000)
	table := tabular.NewFBTable(db, "purchases", tabular.RowLayout)
	if err := table.Import("master", records); err != nil {
		log.Fatal(err)
	}
	n, _ := table.Count("master")
	fmt.Printf("imported %d records into branch master (storage %s)\n", n, db.Stats())

	// Analyst 1 cleans a block of records on their own branch; the
	// fork copies nothing.
	if err := table.Fork(ctx, "master", "cleaning"); err != nil {
		log.Fatal(err)
	}
	var cleaned []workload.Record
	for i := 0; i < 200; i++ {
		r := records[i]
		r.Text1 = "normalized"
		cleaned = append(cleaned, r)
	}
	if err := table.Update("cleaning", cleaned, nil); err != nil {
		log.Fatal(err)
	}

	// Analyst 2 runs aggregations on master, untouched by the fork.
	sum, err := table.Aggregate("master", "int1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum(int1) on master: %d\n", sum)

	// Compare the branches: only the changed subtrees are visited.
	added, removed, modified, err := table.DiffCount("master", "cleaning")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diff master..cleaning: +%d -%d ~%d records\n", added, removed, modified)

	// The column layout serves analytical scans ~10x faster by reading
	// one column's chunks only (Figure 17b).
	colTable := tabular.NewFBTable(forkbase.Open(), "purchases-col", tabular.ColLayout)
	if err := colTable.Import("master", records); err != nil {
		log.Fatal(err)
	}
	colSum, err := colTable.Aggregate("master", "int1")
	if err != nil {
		log.Fatal(err)
	}
	if colSum != sum {
		log.Fatalf("layouts disagree: %d vs %d", colSum, sum)
	}
	fmt.Printf("column layout agrees: sum(int1) = %d\n", colSum)

	// Version history of the dataset itself, via the unified Store API.
	bl, err := db.ListBranches(context.Background(), "tbl/purchases/rows")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset branches:")
	for _, b := range bl.Tagged {
		fmt.Printf("  %-10s head %s\n", b.Name, b.Head.Short())
	}
}
