// Quickstart walks through ForkBase's core API: put/get with implicit
// versioning, history tracking, fork-on-demand with named branches,
// three-way merge, fork-on-conflict with untagged heads, and tamper
// evidence. It mirrors the paper's Figure 4 example and Table 1.
package main

import (
	"fmt"
	"log"

	"forkbase"
)

func main() {
	db := forkbase.Open()
	defer db.Close()

	// --- Versioned key-value basics -------------------------------
	fmt.Println("== versioning ==")
	for _, v := range []string{"draft", "reviewed", "published"} {
		uid, err := db.Put("article", forkbase.String(v))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("put %-10q -> version %s\n", v, uid.Short())
	}
	history, err := db.Track("article", forkbase.DefaultBranch, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("history, newest first:")
	for i, o := range history {
		fmt.Printf("  -%d: %s\n", i, o.Data)
	}

	// --- Figure 4: fork and edit a Blob ---------------------------
	fmt.Println("\n== fork on demand (Figure 4) ==")
	if _, err := db.Put("my key", forkbase.NewBlob([]byte("my value"))); err != nil {
		log.Fatal(err)
	}
	if err := db.Fork("my key", "master", "new branch"); err != nil {
		log.Fatal(err)
	}
	obj, err := db.GetBranch("my key", "new branch")
	if err != nil {
		log.Fatal(err)
	}
	blob, err := db.BlobOf(obj)
	if err != nil {
		log.Fatal(err)
	}
	// Remove 3 bytes from the beginning and append; changes stay
	// local until the Put commits them to the branch.
	blob.Remove(0, 3)
	blob.Append([]byte(" and some more"))
	if _, err := db.PutBranch("my key", "new branch", blob); err != nil {
		log.Fatal(err)
	}
	for _, branch := range []string{"master", "new branch"} {
		o, _ := db.GetBranch("my key", branch)
		b, _ := db.BlobOf(o)
		content, _ := b.Bytes()
		fmt.Printf("%-12s: %q\n", branch, content)
	}

	// --- Merge with a built-in resolver ---------------------------
	fmt.Println("\n== merge ==")
	uid, conflicts, err := db.Merge("my key", "master", "new branch", forkbase.ChooseB)
	if err != nil {
		log.Fatalf("merge: %v (%d conflicts)", err, len(conflicts))
	}
	merged, _ := db.GetUID(uid)
	b, _ := db.BlobOf(merged)
	content, _ := b.Bytes()
	fmt.Printf("master after merge: %q (derives from %d parents)\n", content, len(merged.Bases))

	// --- Fork on conflict (untagged branches) ---------------------
	fmt.Println("\n== fork on conflict ==")
	base, _ := db.PutBase("counter", forkbase.UID{}, forkbase.Int(100))
	u1, _ := db.PutBase("counter", base, forkbase.Int(110)) // +10
	u2, _ := db.PutBase("counter", base, forkbase.Int(95))  // -5
	heads := db.ListUntaggedBranches("counter")
	fmt.Printf("concurrent writers left %d untagged heads\n", len(heads))
	mergedUID, _, err := db.MergeUntagged("counter", forkbase.Aggregate, u1, u2)
	if err != nil {
		log.Fatal(err)
	}
	o, _ := db.GetUID(mergedUID)
	v, _ := db.ValueOf(o)
	fmt.Printf("aggregate-merged counter: %d (100 +10 -5)\n", v.(forkbase.Int))

	// --- Tamper evidence -------------------------------------------
	fmt.Println("\n== tamper evidence ==")
	head, _ := db.Get("article")
	n, err := db.VerifyHistory(head)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified %d versions against the uid hash chain\n", n)
	fmt.Printf("storage: %s\n", db.Stats())
}
