// Quickstart walks through ForkBase's unified Store API: put/get with
// implicit versioning, history tracking, fork-on-demand with named
// branches, three-way merge, fork-on-conflict with untagged heads,
// batched writes, and tamper evidence. It mirrors the paper's Figure 4
// example and Table 1. The same code runs unchanged against a cluster:
// swap forkbase.Open() for forkbase.OpenCluster(...).
package main

import (
	"context"
	"fmt"
	"log"

	"forkbase"
)

func main() {
	ctx := context.Background()
	db := forkbase.Open()
	defer db.Close()

	// --- Versioned key-value basics -------------------------------
	fmt.Println("== versioning ==")
	for _, v := range []string{"draft", "reviewed", "published"} {
		uid, err := db.Put(ctx, "article", forkbase.String(v), forkbase.WithMeta("edit: "+v))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("put %-10q -> version %s\n", v, uid.Short())
	}
	history, err := db.Track(ctx, "article", 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("history, newest first:")
	for i, o := range history {
		fmt.Printf("  -%d: %s (%s)\n", i, o.Data, o.Context)
	}

	// --- Figure 4: fork and edit a Blob ---------------------------
	fmt.Println("\n== fork on demand (Figure 4) ==")
	if _, err := db.Put(ctx, "my key", forkbase.NewBlob([]byte("my value"))); err != nil {
		log.Fatal(err)
	}
	if err := db.Fork(ctx, "my key", "new branch"); err != nil {
		log.Fatal(err)
	}
	obj, err := db.Get(ctx, "my key", forkbase.WithBranch("new branch"))
	if err != nil {
		log.Fatal(err)
	}
	v, err := db.Value(ctx, "my key", obj)
	if err != nil {
		log.Fatal(err)
	}
	blob, err := forkbase.AsBlob(v)
	if err != nil {
		log.Fatal(err)
	}
	// Remove 3 bytes from the beginning and append; changes stay
	// local until the Put commits them to the branch.
	blob.Remove(0, 3)
	blob.Append([]byte(" and some more"))
	if _, err := db.Put(ctx, "my key", blob, forkbase.WithBranch("new branch")); err != nil {
		log.Fatal(err)
	}
	for _, branch := range []string{"master", "new branch"} {
		o, _ := db.Get(ctx, "my key", forkbase.WithBranch(branch))
		bv, _ := db.Value(ctx, "my key", o)
		b, _ := forkbase.AsBlob(bv)
		content, _ := b.Bytes()
		fmt.Printf("%-12s: %q\n", branch, content)
	}

	// --- Merge with a built-in resolver ---------------------------
	fmt.Println("\n== merge ==")
	uid, conflicts, err := db.Merge(ctx, "my key", "master",
		forkbase.WithBranch("new branch"), forkbase.WithResolver(forkbase.ChooseB))
	if err != nil {
		log.Fatalf("merge: %v (%d conflicts)", err, len(conflicts))
	}
	merged, _ := db.Get(ctx, "my key", forkbase.WithBase(uid))
	mv, _ := db.Value(ctx, "my key", merged)
	b, _ := forkbase.AsBlob(mv)
	content, _ := b.Bytes()
	fmt.Printf("master after merge: %q (derives from %d parents)\n", content, len(merged.Bases))

	// --- Fork on conflict (untagged branches) ---------------------
	fmt.Println("\n== fork on conflict ==")
	base, _ := db.Put(ctx, "counter", forkbase.Int(100), forkbase.WithBase(forkbase.UID{}))
	u1, _ := db.Put(ctx, "counter", forkbase.Int(110), forkbase.WithBase(base)) // +10
	u2, _ := db.Put(ctx, "counter", forkbase.Int(95), forkbase.WithBase(base))  // -5
	bl, _ := db.ListBranches(ctx, "counter")
	fmt.Printf("concurrent writers left %d untagged heads\n", len(bl.Untagged))
	mergedUID, _, err := db.Merge(ctx, "counter", "",
		forkbase.WithBase(u1), forkbase.WithBase(u2), forkbase.WithResolver(forkbase.Aggregate))
	if err != nil {
		log.Fatal(err)
	}
	o, _ := db.Get(ctx, "counter", forkbase.WithBase(mergedUID))
	cv, _ := db.Value(ctx, "counter", o)
	fmt.Printf("aggregate-merged counter: %d (100 +10 -5)\n", cv.(forkbase.Int))

	// --- Batched writes -------------------------------------------
	fmt.Println("\n== batched writes ==")
	batch := forkbase.NewBatch()
	for i := 0; i < 3; i++ {
		batch.Put("article", forkbase.String(fmt.Sprintf("rev-%d", i)))
	}
	uids, err := db.Apply(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one batch, %d chained versions (lock taken once)\n", len(uids))

	// --- Tamper evidence -------------------------------------------
	fmt.Println("\n== tamper evidence ==")
	head, _ := db.Get(ctx, "article")
	n, err := db.VerifyHistory(head)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified %d versions against the uid hash chain\n", n)
	fmt.Printf("storage: %s\n", db.Stats())
}
