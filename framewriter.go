package forkbase

import (
	"io"
	"net"
	"runtime"
	"sync"

	"forkbase/internal/obs"
	"forkbase/internal/wire"
)

// connBufSize sizes the bufio.Reader on both ends of a connection.
// Deep pipelining only pays off if a burst of frames arrives in one
// read; 64 KiB holds thousands of small frames.
const connBufSize = 64 << 10

// bigPayload is the payload size above which a frame is written via
// writev (net.Buffers) instead of being copied into the pending
// buffer — at that size the copy costs more than the extra iovec.
const bigPayload = 64 << 10

// maxRetainedWrite caps the pending buffer kept across flushes, so
// one burst of large responses cannot pin its high-water mark in
// memory for the connection's lifetime.
const maxRetainedWrite = 1 << 20

// frameWriter batches the frames bound for one connection into as few
// syscalls as possible. Frames are appended to a pending buffer under
// a mutex; the first writer finding no flush in progress becomes the
// flusher and drains the buffer, releasing the mutex around each
// Write so concurrent writers keep appending — everything that lands
// while a Write is in flight goes out in the next one. Deeply
// pipelined traffic thus collapses to one syscall per burst instead
// of one per frame, with no background goroutine and no added latency
// for a lone frame (its writer flushes immediately).
//
// enqueue appends without flushing; the server's read loop uses it to
// cork a burst of inline responses and flush once at burst end. A
// corked frame is never stranded: every writeFrame and flush drains
// whatever is pending, and the read loop flushes whenever it stops
// finding complete frames in its buffer.
type frameWriter struct {
	mu       sync.Mutex
	w        io.Writer
	count    *obs.Counter // outbound wire bytes, framing included; nil to skip
	onErr    func(error)  // called once per failed flush, outside mu
	pend     []byte
	spare    []byte // retained empty buffer for pend's next swap
	flushing bool
	err      error // first write failure; sticky
}

// newFrameWriter wraps w. count, when non-nil, accumulates every byte
// actually handed to w — the single choke point both ends route their
// outbound wire accounting through, so no path (corked bursts, writev
// frames) can escape the metric.
func newFrameWriter(w io.Writer, count *obs.Counter, onErr func(error)) *frameWriter {
	return &frameWriter{w: w, count: count, onErr: onErr}
}

// enqueue appends one frame without scheduling a flush. The caller
// owes a later flush (or writeFrame) on this connection.
func (fw *frameWriter) enqueue(reqID uint64, op uint8, payload []byte) error {
	fw.mu.Lock()
	if fw.err != nil {
		err := fw.err
		fw.mu.Unlock()
		return err
	}
	fw.pend = wire.AppendFrame(fw.pend, reqID, op, payload)
	fw.mu.Unlock()
	return nil
}

// writeFrame appends one frame and ensures it reaches the connection:
// the caller either becomes the flusher or an in-flight flusher picks
// the frame up. The payload is not referenced after return.
func (fw *frameWriter) writeFrame(reqID uint64, op uint8, payload []byte) error {
	fw.mu.Lock()
	if fw.err != nil {
		err := fw.err
		fw.mu.Unlock()
		return err
	}
	if len(payload) >= bigPayload && !fw.flushing {
		fw.flushing = true
		head := fw.takePend()
		hdr, tail := wire.FrameParts(reqID, op, payload)
		bufs := net.Buffers{head, hdr[:], payload, tail[:]}
		if len(head) == 0 {
			bufs = bufs[1:]
		}
		return fw.runFlush(bufs, head)
	}
	fw.pend = wire.AppendFrame(fw.pend, reqID, op, payload)
	if fw.flushing {
		fw.mu.Unlock()
		return nil
	}
	// Yield once before claiming the flush. Pipelined peers wake in
	// bursts (the far end flushes their responses together), so right
	// now other goroutines are likely about to cork frames of their
	// own; one reschedule lets them, and a single write carries the
	// whole burst. A lone writer pays one Gosched — noise against the
	// syscall it is about to make.
	fw.mu.Unlock()
	runtime.Gosched()
	fw.mu.Lock()
	if fw.err != nil {
		err := fw.err
		fw.mu.Unlock()
		return err
	}
	if fw.flushing || len(fw.pend) == 0 {
		// A peer claimed the flush (or drained us) during the yield.
		fw.mu.Unlock()
		return nil
	}
	fw.flushing = true
	return fw.runFlush(nil, nil)
}

// flush drains anything pending unless a flusher is already on it.
func (fw *frameWriter) flush() error {
	fw.mu.Lock()
	if fw.err != nil {
		err := fw.err
		fw.mu.Unlock()
		return err
	}
	if fw.flushing || len(fw.pend) == 0 {
		fw.mu.Unlock()
		return nil
	}
	fw.flushing = true
	return fw.runFlush(nil, nil)
}

// takePend detaches the pending buffer for writing, installing the
// spare so appends during the write start from an allocated buffer.
// Caller holds mu.
func (fw *frameWriter) takePend() []byte {
	buf := fw.pend
	if fw.spare != nil {
		fw.pend = fw.spare[:0]
		fw.spare = nil
	} else {
		fw.pend = nil
	}
	return buf
}

// wrote credits n bytes to the outbound counter. Called outside mu —
// the counter is atomic and order does not matter for telemetry.
func (fw *frameWriter) wrote(n int64) {
	if fw.count != nil && n > 0 {
		fw.count.Add(n)
	}
}

// retire returns a drained buffer to spare duty. Caller holds mu.
func (fw *frameWriter) retire(buf []byte) {
	if fw.spare == nil && buf != nil && cap(buf) <= maxRetainedWrite {
		fw.spare = buf[:0]
	}
}

// runFlush is the flusher body: entered with mu held and the flushing
// flag claimed, it writes first (a scatter-gather list, if any), then
// drains pend until empty, releasing mu around every Write. Returns
// with mu released.
func (fw *frameWriter) runFlush(first net.Buffers, firstBuf []byte) error {
	var err error
	if len(first) > 0 {
		fw.mu.Unlock()
		var n int64
		n, err = first.WriteTo(fw.w)
		fw.wrote(n)
		fw.mu.Lock()
		fw.retire(firstBuf)
	}
	for err == nil && len(fw.pend) > 0 {
		buf := fw.takePend()
		fw.mu.Unlock()
		var n int
		n, err = fw.w.Write(buf)
		fw.wrote(int64(n))
		fw.mu.Lock()
		fw.retire(buf)
	}
	fw.flushing = false
	if err != nil && fw.err == nil {
		fw.err = err
	}
	fw.mu.Unlock()
	if err != nil && fw.onErr != nil {
		fw.onErr(err)
	}
	return err
}
