// Package forkbase is a Go implementation of ForkBase, the storage
// engine for blockchain and forkable applications described in
//
//	Wang et al., "ForkBase: An Efficient Storage Engine for Blockchain
//	and Forkable Applications", VLDB 2018.
//
// ForkBase extends the key-value model with three properties that
// modern applications otherwise rebuild ad hoc:
//
//   - Data versioning: every Put creates a new immutable version; the
//     full evolution history of each key is retained and queryable.
//   - Fork semantics: both fork-on-demand (named branches, as in git)
//     and fork-on-conflict (implicit sibling versions under concurrent
//     updates, as in blockchains and weakly consistent stores).
//   - Tamper evidence: a version's UID is a cryptographic digest that
//     commits to the value and its entire derivation history.
//
// Large values (Blob, List, Map, Set) are stored as POS-Trees —
// pattern-oriented-split trees that combine content-defined chunking, a
// Merkle tree and a B+-tree — giving fine-grained access, fast diffs,
// and chunk-level deduplication across versions and objects.
//
// # Quick start
//
//	db := forkbase.Open()
//	db.Put("my key", forkbase.NewBlob([]byte("my value")))
//	db.Fork("my key", "master", "new branch")
//	obj, _ := db.GetBranch("my key", "new branch")
//	blob, _ := db.BlobOf(obj)
//	blob.Remove(0, 10)
//	blob.Append([]byte("some more"))
//	db.PutBranch("my key", "new branch", blob)
package forkbase

import (
	"forkbase/internal/branch"
	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/merge"
	"forkbase/internal/postree"
	"forkbase/internal/store"
	"forkbase/internal/types"
)

// ParseUID decodes the 64-character hexadecimal form of a UID.
func ParseUID(s string) (UID, error) { return chunk.ParseID(s) }

// Re-exported value types. Primitive types (String, Int, Float, Bool,
// Tuple) are embedded in the version record; chunkable types (Blob,
// List, Map, Set) are POS-Trees fetched on demand.
type (
	// Value is any ForkBase value.
	Value = types.Value
	// String is a primitive byte string.
	String = types.String
	// Int is a primitive 64-bit integer.
	Int = types.Int
	// Float is a primitive 64-bit float.
	Float = types.Float
	// Bool is a primitive boolean.
	Bool = types.Bool
	// Tuple is a primitive ordered field collection.
	Tuple = types.Tuple
	// Blob is a chunkable byte sequence.
	Blob = types.Blob
	// List is a chunkable element sequence.
	List = types.List
	// Map is a chunkable sorted key-value collection.
	Map = types.Map
	// Set is a chunkable sorted element collection.
	Set = types.Set
	// FObject is one version of an object: its value plus derivation
	// metadata (paper Figure 2).
	FObject = types.FObject
	// UID is a tamper-evident version identifier.
	UID = types.UID
	// TaggedBranch pairs a branch name and its head version.
	TaggedBranch = branch.TaggedBranch
	// Conflict is one unresolved difference from a merge.
	Conflict = merge.Conflict
	// Resolver resolves merge conflicts; see ChooseA, ChooseB,
	// Append, Aggregate for built-ins.
	Resolver = merge.Resolver
	// Diff is the result of comparing two versions.
	Diff = core.Diff
	// StoreStats reports chunk-storage counters.
	StoreStats = store.Stats
	// KV is a key-value pair for Map batch updates.
	KV = postree.KV
)

// Tuple codecs, exposed for applications that store Tuples inside
// chunkable collections (e.g. records in a Map).
var (
	// EncodeTuple serializes a Tuple to bytes.
	EncodeTuple = types.EncodeTuple
	// DecodeTuple parses a serialized Tuple.
	DecodeTuple = types.DecodeTuple
)

// Constructors for fresh chunkable values.
var (
	// NewBlob returns a Blob staging the given bytes.
	NewBlob = types.NewBlob
	// NewMap returns an empty Map.
	NewMap = types.NewMap
	// NewList returns a List staging the given elements.
	NewList = types.NewList
	// NewSet returns a Set staging the given elements.
	NewSet = types.NewSet
)

// Built-in conflict resolvers (§4.5.2).
var (
	// ChooseA keeps the target branch's value.
	ChooseA = merge.ChooseA
	// ChooseB keeps the reference branch's value.
	ChooseB = merge.ChooseB
	// AppendResolve concatenates both values.
	AppendResolve = merge.Append
	// Aggregate sums integer deltas from the base.
	Aggregate = merge.Aggregate
)

// Sentinel errors.
var (
	// ErrKeyNotFound reports an unknown key.
	ErrKeyNotFound = core.ErrKeyNotFound
	// ErrBranchNotFound reports an unknown branch.
	ErrBranchNotFound = branch.ErrBranchNotFound
	// ErrBranchExists reports a branch-name collision on Fork/Rename.
	ErrBranchExists = branch.ErrBranchExists
	// ErrGuardFailed reports a guarded Put that lost a race.
	ErrGuardFailed = branch.ErrGuardFailed
	// ErrConflict reports unresolved merge conflicts.
	ErrConflict = merge.ErrConflict
)

// DefaultBranch is the branch used by the single-argument Get/Put.
const DefaultBranch = branch.DefaultBranch

// DB is an embedded ForkBase instance.
type DB struct {
	eng *core.Engine
}

// Options configures Open/OpenPath.
type Options struct {
	// ChunkSizeLog2 sets the expected POS-Tree chunk size to
	// 2^ChunkSizeLog2 bytes; 0 means the paper default of 4 KB.
	ChunkSizeLog2 uint
	// SyncWrites fsyncs the chunk log after every write (file-backed
	// stores only).
	SyncWrites bool
}

func (o Options) treeConfig() postree.Config {
	cfg := postree.DefaultConfig()
	if o.ChunkSizeLog2 != 0 {
		cfg.LeafQ = o.ChunkSizeLog2
	}
	return cfg
}

// Open returns an in-memory ForkBase instance.
func Open(opts ...Options) *DB {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	return &DB{eng: core.NewEngine(store.NewMemStore(), o.treeConfig())}
}

// OpenPath returns a ForkBase instance persisted in dir using the
// log-structured chunk store.
func OpenPath(dir string, opts ...Options) (*DB, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	fs, err := store.OpenFileStore(dir, store.FileStoreOptions{Sync: o.SyncWrites})
	if err != nil {
		return nil, err
	}
	return &DB{eng: core.NewEngine(fs, o.treeConfig())}, nil
}

// NewDBOn builds a DB over an arbitrary chunk store; used by the
// cluster layer and by tests.
func NewDBOn(s store.Store, cfg postree.Config) *DB {
	return &DB{eng: core.NewEngine(s, cfg)}
}

// Close releases the underlying store.
func (db *DB) Close() error { return db.eng.Store().Close() }

// Engine exposes the underlying engine for advanced integrations
// (cluster layer, benchmarks).
func (db *DB) Engine() *core.Engine { return db.eng }

// Stats returns chunk-storage counters, including deduplication rates.
func (db *DB) Stats() StoreStats { return db.eng.Store().Stats() }

// Get reads the head of the default branch (M1 with the branch absent).
func (db *DB) Get(key string) (*FObject, error) {
	return db.eng.Get([]byte(key), DefaultBranch)
}

// GetBranch reads the head of a named branch (M1).
func (db *DB) GetBranch(key, branchName string) (*FObject, error) {
	return db.eng.Get([]byte(key), branchName)
}

// GetUID reads a specific version (M2) and verifies it against uid.
func (db *DB) GetUID(uid UID) (*FObject, error) { return db.eng.GetUID(uid) }

// Put writes to the default branch (M3 with the branch absent).
func (db *DB) Put(key string, v Value) (UID, error) {
	return db.eng.Put([]byte(key), DefaultBranch, v, nil)
}

// PutBranch writes to a named branch, creating it on first write (M3).
func (db *DB) PutBranch(key, branchName string, v Value) (UID, error) {
	return db.eng.Put([]byte(key), branchName, v, nil)
}

// PutWithContext writes to a branch with application metadata stored in
// the version's context field (e.g. a commit message).
func (db *DB) PutWithContext(key, branchName string, v Value, context []byte) (UID, error) {
	return db.eng.Put([]byte(key), branchName, v, context)
}

// PutGuarded writes only if the branch head still equals guard.
func (db *DB) PutGuarded(key, branchName string, v Value, guard UID) (UID, error) {
	return db.eng.PutGuarded([]byte(key), branchName, v, nil, guard)
}

// PutBase writes a new version deriving from an explicit base (M4), the
// fork-on-conflict path: concurrent writers against the same base
// produce sibling untagged heads instead of overwriting each other.
func (db *DB) PutBase(key string, base UID, v Value) (UID, error) {
	return db.eng.PutBase([]byte(key), base, v, nil)
}

// Fork creates a new branch at an existing branch's head (M11).
func (db *DB) Fork(key, refBranch, newBranch string) error {
	return db.eng.Fork([]byte(key), refBranch, newBranch)
}

// ForkUID creates a new branch at an arbitrary version (M12).
func (db *DB) ForkUID(key string, uid UID, newBranch string) error {
	return db.eng.ForkUID([]byte(key), uid, newBranch)
}

// Rename renames a branch (M13).
func (db *DB) Rename(key, branchName, newName string) error {
	return db.eng.Rename([]byte(key), branchName, newName)
}

// RemoveBranch drops a branch name; versions remain reachable by uid
// (M14).
func (db *DB) RemoveBranch(key, branchName string) error {
	return db.eng.RemoveBranch([]byte(key), branchName)
}

// ListKeys returns all keys (M8).
func (db *DB) ListKeys() []string { return db.eng.ListKeys() }

// ListTaggedBranches returns a key's named branches and heads (M9).
func (db *DB) ListTaggedBranches(key string) []TaggedBranch {
	return db.eng.ListTaggedBranches([]byte(key))
}

// ListUntaggedBranches returns a key's untagged heads (M10); more than
// one means unresolved fork-on-conflict siblings.
func (db *DB) ListUntaggedBranches(key string) []UID {
	return db.eng.ListUntaggedBranches([]byte(key))
}

// Merge merges refBranch into tgtBranch (M5).
func (db *DB) Merge(key, tgtBranch, refBranch string, res Resolver) (UID, []Conflict, error) {
	return db.eng.MergeBranches([]byte(key), tgtBranch, refBranch, res, nil)
}

// MergeUID merges a specific version into tgtBranch (M6).
func (db *DB) MergeUID(key, tgtBranch string, ref UID, res Resolver) (UID, []Conflict, error) {
	return db.eng.MergeUID([]byte(key), tgtBranch, ref, res, nil)
}

// MergeUntagged merges untagged heads into one, replacing them in the
// untagged table (M7).
func (db *DB) MergeUntagged(key string, res Resolver, uids ...UID) (UID, []Conflict, error) {
	return db.eng.MergeUntagged([]byte(key), res, nil, uids...)
}

// Track returns versions at derivation distances [from, to] behind a
// branch head (M15).
func (db *DB) Track(key, branchName string, from, to int) ([]*FObject, error) {
	return db.eng.Track([]byte(key), branchName, from, to)
}

// TrackUID returns versions at derivation distances [from, to] behind a
// version (M16).
func (db *DB) TrackUID(uid UID, from, to int) ([]*FObject, error) {
	return db.eng.TrackUID(uid, from, to)
}

// LCA returns the least common ancestor of two versions (M17).
func (db *DB) LCA(uid1, uid2 UID) (*FObject, error) { return db.eng.LCA(uid1, uid2) }

// DiffVersions compares two versions of the same type.
func (db *DB) DiffVersions(uid1, uid2 UID) (*Diff, error) { return db.eng.Diff(uid1, uid2) }

// ValueOf decodes an FObject's value.
func (db *DB) ValueOf(o *FObject) (Value, error) { return db.eng.Value(o) }

// BlobOf decodes an FObject known to hold a Blob.
func (db *DB) BlobOf(o *FObject) (*Blob, error) {
	v, err := db.eng.Value(o)
	if err != nil {
		return nil, err
	}
	b, ok := v.(*Blob)
	if !ok {
		return nil, core.ErrTypeMismatch
	}
	return b, nil
}

// MapOf decodes an FObject known to hold a Map.
func (db *DB) MapOf(o *FObject) (*Map, error) {
	v, err := db.eng.Value(o)
	if err != nil {
		return nil, err
	}
	m, ok := v.(*Map)
	if !ok {
		return nil, core.ErrTypeMismatch
	}
	return m, nil
}

// ListOf decodes an FObject known to hold a List.
func (db *DB) ListOf(o *FObject) (*List, error) {
	v, err := db.eng.Value(o)
	if err != nil {
		return nil, err
	}
	l, ok := v.(*List)
	if !ok {
		return nil, core.ErrTypeMismatch
	}
	return l, nil
}

// SetOf decodes an FObject known to hold a Set.
func (db *DB) SetOf(o *FObject) (*Set, error) {
	v, err := db.eng.Value(o)
	if err != nil {
		return nil, err
	}
	s, ok := v.(*Set)
	if !ok {
		return nil, core.ErrTypeMismatch
	}
	return s, nil
}

// VerifyHistory verifies the hash chain from a version back to its
// first ancestor and returns the number of versions checked (§3.2).
func (db *DB) VerifyHistory(o *FObject) (int, error) {
	return o.VerifyHistory(db.eng.Store())
}
