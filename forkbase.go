// Package forkbase is a Go implementation of ForkBase, the storage
// engine for blockchain and forkable applications described in
//
//	Wang et al., "ForkBase: An Efficient Storage Engine for Blockchain
//	and Forkable Applications", VLDB 2018.
//
// ForkBase extends the key-value model with three properties that
// modern applications otherwise rebuild ad hoc:
//
//   - Data versioning: every Put creates a new immutable version; the
//     full evolution history of each key is retained and queryable.
//   - Fork semantics: both fork-on-demand (named branches, as in git)
//     and fork-on-conflict (implicit sibling versions under concurrent
//     updates, as in blockchains and weakly consistent stores).
//   - Tamper evidence: a version's UID is a cryptographic digest that
//     commits to the value and its entire derivation history.
//
// Large values (Blob, List, Map, Set) are stored as POS-Trees —
// pattern-oriented-split trees that combine content-defined chunking, a
// Merkle tree and a B+-tree — giving fine-grained access, fast diffs,
// and chunk-level deduplication across versions and objects.
//
// # Quick start
//
// All access goes through the unified Store API (client.go), which the
// embedded DB and the distributed ClusterClient both implement:
//
//	ctx := context.Background()
//	db := forkbase.Open()
//	db.Put(ctx, "my key", forkbase.NewBlob([]byte("my value")))
//	db.Fork(ctx, "my key", "new branch")
//	obj, _ := db.Get(ctx, "my key", forkbase.WithBranch("new branch"))
//	v, _ := db.Value(ctx, "my key", obj)
//	blob, _ := forkbase.AsBlob(v)
//	blob.Remove(0, 10)
//	blob.Append([]byte("some more"))
//	db.Put(ctx, "my key", blob, forkbase.WithBranch("new branch"))
package forkbase

import (
	"context"
	"sync/atomic"

	"forkbase/internal/branch"
	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/merge"
	"forkbase/internal/obs"
	"forkbase/internal/postree"
	"forkbase/internal/store"
	"forkbase/internal/types"
	"forkbase/internal/wire"
)

// ParseUID decodes the 64-character hexadecimal form of a UID.
func ParseUID(s string) (UID, error) { return chunk.ParseID(s) }

// Re-exported value types. Primitive types (String, Int, Float, Bool,
// Tuple) are embedded in the version record; chunkable types (Blob,
// List, Map, Set) are POS-Trees fetched on demand.
type (
	// Value is any ForkBase value.
	Value = types.Value
	// String is a primitive byte string.
	String = types.String
	// Int is a primitive 64-bit integer.
	Int = types.Int
	// Float is a primitive 64-bit float.
	Float = types.Float
	// Bool is a primitive boolean.
	Bool = types.Bool
	// Tuple is a primitive ordered field collection.
	Tuple = types.Tuple
	// Blob is a chunkable byte sequence.
	Blob = types.Blob
	// List is a chunkable element sequence.
	List = types.List
	// Map is a chunkable sorted key-value collection.
	Map = types.Map
	// Set is a chunkable sorted element collection.
	Set = types.Set
	// FObject is one version of an object: its value plus derivation
	// metadata (paper Figure 2).
	FObject = types.FObject
	// UID is a tamper-evident version identifier.
	UID = types.UID
	// TaggedBranch pairs a branch name and its head version.
	TaggedBranch = branch.TaggedBranch
	// Conflict is one unresolved difference from a merge.
	Conflict = merge.Conflict
	// Resolver resolves merge conflicts; see ChooseA, ChooseB,
	// Append, Aggregate for built-ins.
	Resolver = merge.Resolver
	// Diff is the result of comparing two versions.
	Diff = core.Diff
	// StoreStats reports chunk-storage counters.
	StoreStats = store.Stats
	// GCStats reports one garbage collection's effect.
	GCStats = store.GCStats
	// MetaStats reports the metadata journal's footprint.
	MetaStats = branch.JournalStats
	// KV is a key-value pair for Map batch updates.
	KV = postree.KV
)

// Tuple codecs, exposed for applications that store Tuples inside
// chunkable collections (e.g. records in a Map).
var (
	// EncodeTuple serializes a Tuple to bytes.
	EncodeTuple = types.EncodeTuple
	// DecodeTuple parses a serialized Tuple.
	DecodeTuple = types.DecodeTuple
)

// Constructors for fresh chunkable values.
var (
	// NewBlob returns a Blob staging the given bytes.
	NewBlob = types.NewBlob
	// NewMap returns an empty Map.
	NewMap = types.NewMap
	// NewList returns a List staging the given elements.
	NewList = types.NewList
	// NewSet returns a Set staging the given elements.
	NewSet = types.NewSet
)

// Built-in conflict resolvers (§4.5.2).
var (
	// ChooseA keeps the target branch's value.
	ChooseA = merge.ChooseA
	// ChooseB keeps the reference branch's value.
	ChooseB = merge.ChooseB
	// AppendResolve concatenates both values.
	AppendResolve = merge.Append
	// Aggregate sums integer deltas from the base.
	Aggregate = merge.Aggregate
)

// Sentinel errors.
var (
	// ErrKeyNotFound reports an unknown key.
	ErrKeyNotFound = core.ErrKeyNotFound
	// ErrBranchNotFound reports an unknown branch.
	ErrBranchNotFound = branch.ErrBranchNotFound
	// ErrBranchExists reports a branch-name collision on Fork/Rename.
	ErrBranchExists = branch.ErrBranchExists
	// ErrGuardFailed reports a guarded Put that lost a race.
	ErrGuardFailed = branch.ErrGuardFailed
	// ErrConflict reports unresolved merge conflicts.
	ErrConflict = merge.ErrConflict
	// ErrCorrupt reports a chunk that failed an integrity check on
	// read (crc mismatch on disk, or content not hashing to its cid).
	ErrCorrupt = store.ErrCorrupt
	// ErrNotCollectable reports a GC call against a store whose
	// bottom layer cannot reclaim chunks.
	ErrNotCollectable = store.ErrNotCollectable
	// ErrUnsupported reports a request the remote peer does not serve
	// (a pre-stats server asked for ServerStats, a proxy backend asked
	// for chunk ops).
	ErrUnsupported = wire.ErrUnsupported
)

// DefaultBranch is the branch used by the single-argument Get/Put.
const DefaultBranch = branch.DefaultBranch

// DB is an embedded ForkBase instance. It implements Store; see
// client.go for the unified API surface.
type DB struct {
	eng  *core.Engine
	acl  *ACL
	jrnl *branch.Journal // metadata journal; nil for in-memory stores

	gcThreshold float64      // segment compaction threshold (0 = default)
	autoGCEvery int          // run GC after this many branch removals
	removals    atomic.Int64 // RemoveBranch calls since open

	// reg is the engine/store metric registry (see metrics.go); the
	// two histograms it owns that the engine feeds directly are cached
	// here so the hot paths skip the registry lookup.
	reg       *obs.Registry
	gcPause   *obs.Histogram
	fsyncHist *obs.Histogram
}

// initMetrics builds the DB's registry and its engine-fed histograms.
// Sampled gauges close over db and only run at snapshot time, so
// calling this before eng/jrnl are assigned is safe.
func (db *DB) initMetrics() {
	db.reg = newDBMetrics(db)
	db.gcPause = db.reg.Histogram("forkbase_gc_pause_ns", "")
	db.fsyncHist = db.reg.Histogram("forkbase_journal_fsync_ns", "")
}

// Options configures Open/OpenPath. A literal Options value can be
// passed directly (it implements OpenOption, replacing the whole
// option set), or individual knobs can be applied with WithCacheBytes,
// WithVerifyReads and friends.
type Options struct {
	// ChunkSizeLog2 sets the expected POS-Tree chunk size to
	// 2^ChunkSizeLog2 bytes; 0 means the paper default of 4 KB.
	ChunkSizeLog2 uint
	// SyncWrites fsyncs the chunk log after every write (file-backed
	// stores only).
	SyncWrites bool
	// SegmentSize rotates the chunk log when the active segment
	// exceeds this many bytes (file-backed stores only); 0 means the
	// store default of 64 MiB.
	SegmentSize int64
	// CacheBytes bounds an in-memory chunk cache on the read path; 0
	// disables caching. See store.Cache for what it saves per backend.
	CacheBytes int64
	// VerifyReads re-verifies every chunk read against its cid,
	// turning substituted or rotted content into store.ErrCorrupt.
	// File-backed stores additionally always verify the record crc32.
	VerifyReads bool
	// ACL, when set, routes every call through the access controller;
	// pair it with WithUser. Nil means open mode (the embedded
	// single-user default).
	ACL *ACL
	// GCThreshold is the live ratio below which GC compacts a sealed
	// log segment (file-backed stores); 0 means the store default of
	// 0.5 — segments more than half garbage are rewritten.
	GCThreshold float64
	// AutoGCEvery, when positive, runs a full collection automatically
	// after every AutoGCEvery successful RemoveBranch calls — the
	// operation that turns reachable versions into garbage. 0 leaves
	// collection entirely to explicit GC calls.
	AutoGCEvery int
	// MetaSync fsyncs the metadata journal after every branch or pin
	// mutation, making each head movement power-loss durable
	// (file-backed stores only). Default false: journal records are
	// still written unbuffered, so an unclean process stop loses no
	// metadata — only an OS crash can lose the very last records. Pair
	// with SyncWrites for full power-loss durability of data AND
	// metadata.
	MetaSync bool
	// SnapshotEvery is the number of journaled metadata mutations
	// between snapshot+truncate compactions of the journal (file-backed
	// stores only). 0 means the default of 4096; negative disables
	// compaction, letting the journal grow until the store is reopened.
	SnapshotEvery int
}

// OpenOption configures Open/OpenPath: either a full Options literal
// or one of the With* open options.
type OpenOption interface {
	applyOpen(*Options)
}

func (o Options) applyOpen(dst *Options) { *dst = o }

type openOptionFunc func(*Options)

func (f openOptionFunc) applyOpen(o *Options) { f(o) }

// WithCacheBytes enables a chunk cache of up to n bytes in front of
// the store's read path.
func WithCacheBytes(n int64) OpenOption {
	return openOptionFunc(func(o *Options) { o.CacheBytes = n })
}

// WithVerifyReads toggles integrity verification of every chunk read
// against its content identifier.
func WithVerifyReads(on bool) OpenOption {
	return openOptionFunc(func(o *Options) { o.VerifyReads = on })
}

// WithGCThreshold sets the live ratio below which GC compacts a sealed
// log segment. 0.5 (the default) rewrites segments more than half
// garbage; higher values compact more aggressively, trading write
// amplification for disk space.
func WithGCThreshold(ratio float64) OpenOption {
	return openOptionFunc(func(o *Options) { o.GCThreshold = ratio })
}

// WithAutoGC runs a full collection automatically after every n
// successful branch removals; see Options.AutoGCEvery. Safe on
// reopened persistent stores: OpenPath recovers every branch, untagged
// head and pin from the metadata journal, so the roots a collection
// sees after reopen are exactly the roots the previous process held.
func WithAutoGC(n int) OpenOption {
	return openOptionFunc(func(o *Options) { o.AutoGCEvery = n })
}

// WithMetaSync fsyncs the metadata journal after every branch or pin
// mutation; see Options.MetaSync.
func WithMetaSync(on bool) OpenOption {
	return openOptionFunc(func(o *Options) { o.MetaSync = on })
}

// WithSnapshotEvery compacts the metadata journal (full snapshot, then
// WAL truncate) after every n journaled mutations; see
// Options.SnapshotEvery.
func WithSnapshotEvery(n int) OpenOption {
	return openOptionFunc(func(o *Options) { o.SnapshotEvery = n })
}

func resolveOpenOpts(opts []OpenOption) Options {
	var o Options
	for _, op := range opts {
		op.applyOpen(&o)
	}
	return o
}

func (o Options) treeConfig() postree.Config {
	cfg := postree.DefaultConfig()
	if o.ChunkSizeLog2 != 0 {
		cfg.LeafQ = o.ChunkSizeLog2
	}
	return cfg
}

// wrapStore stacks the read-path layers onto a base store: integrity
// enforcement below, cache on top, so a chunk is verified once — when
// it enters the cache — and hits skip both the check and the backend.
func (o Options) wrapStore(s store.Store) store.Store {
	if o.VerifyReads {
		s = store.Verified(s)
	}
	if o.CacheBytes > 0 {
		s = store.NewCache(s, o.CacheBytes)
	}
	return s
}

// Open returns an in-memory ForkBase instance.
func Open(opts ...OpenOption) *DB {
	o := resolveOpenOpts(opts)
	db := &DB{
		eng:         core.NewEngine(o.wrapStore(store.NewMemStore()), o.treeConfig()),
		acl:         o.ACL,
		gcThreshold: o.GCThreshold,
		autoGCEvery: o.AutoGCEvery,
	}
	db.initMetrics()
	return db
}

// OpenPath returns a ForkBase instance persisted in dir using the
// log-structured chunk store. Beside the chunk log, dir holds the
// metadata journal (meta.wal + meta.snap): every branch and pin
// mutation is recorded durably, so reopening the directory recovers
// all tagged branches, untagged heads and pins — and a GC run on the
// reopened store sees the same roots the previous process did. The
// journal obeys write-ahead ordering against the chunk log (the log is
// flushed before a head naming its chunks is recorded), so a recovered
// head always resolves.
func OpenPath(dir string, opts ...OpenOption) (*DB, error) {
	o := resolveOpenOpts(opts)
	fs, err := store.OpenFileStore(dir, store.FileStoreOptions{
		Sync:        o.SyncWrites,
		SegmentSize: o.SegmentSize,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{
		acl:         o.ACL,
		gcThreshold: o.GCThreshold,
		autoGCEvery: o.AutoGCEvery,
	}
	db.initMetrics()
	j, err := branch.OpenJournal(dir, branch.JournalOptions{
		Sync:          o.MetaSync,
		SnapshotEvery: o.SnapshotEvery,
		Barrier:       fs.Flush,
		FsyncHist:     db.fsyncHist,
	})
	if err != nil {
		fs.Close()
		return nil, err
	}
	db.jrnl = j
	db.eng = core.NewEngine(o.wrapStore(fs), o.treeConfig())
	db.eng.Recover(j)
	return db, nil
}

// NewDBOn builds a DB over an arbitrary chunk store; used by the
// cluster layer and by tests.
func NewDBOn(s store.Store, cfg postree.Config) *DB {
	db := &DB{eng: core.NewEngine(s, cfg)}
	db.initMetrics()
	return db
}

// Close releases the underlying store and metadata journal.
func (db *DB) Close() error {
	err := db.eng.Store().Close()
	if db.jrnl != nil {
		if jerr := db.jrnl.Close(); err == nil {
			err = jerr
		}
	}
	return err
}

// MetaStats reports the metadata journal's footprint (WAL and snapshot
// sizes, pending replay length) and recovered contents. ok is false
// for in-memory stores, which keep no journal.
func (db *DB) MetaStats() (MetaStats, bool) {
	if db.jrnl == nil {
		return MetaStats{}, false
	}
	return db.jrnl.Stats(), true
}

// CompactMeta forces a snapshot+truncate compaction of the metadata
// journal, independent of the WithSnapshotEvery cadence. A no-op
// (nil) on in-memory stores.
func (db *DB) CompactMeta() error {
	if db.jrnl == nil {
		return nil
	}
	return db.jrnl.Compact()
}

// Engine exposes the underlying engine for advanced integrations
// (cluster layer, benchmarks).
func (db *DB) Engine() *core.Engine { return db.eng }

// Stats returns chunk-storage counters, including deduplication rates.
func (db *DB) Stats() StoreStats { return db.eng.Store().Stats() }

// --- chunkBackend (chunk-granular serving) --------------------------
//
// These methods let a Server wrapping this DB serve the chunk-granular
// transfer ops (OpChunkHave/Want/Send/PutChunked): direct access to
// the chunk store, transient GC shields for negotiated-but-uncommitted
// chunks, and the per-key access check the materialized ops would run.

func (db *DB) chunkStore() store.Store       { return db.eng.Store() }
func (db *DB) treeConfig() postree.Config    { return db.eng.Config() }
func (db *DB) shieldChunks(ids []chunk.ID)   { db.eng.ShieldUIDs(ids) }
func (db *DB) unshieldChunks(ids []chunk.ID) { db.eng.UnshieldUIDs(ids) }

func (db *DB) checkChunkAccess(user, key string, write bool) error {
	need := PermRead
	if write {
		need = PermWrite
	}
	return db.check(user, key, "", need)
}

// --- deprecated method zoo ------------------------------------------
//
// The original API exposed one method per Table 1 operation. They
// remain as thin wrappers over the unified Store surface (client.go)
// so existing callers keep working; new code should use the Store
// methods with options.

// GetBranch reads the head of a named branch (M1).
//
// Deprecated: use Get with WithBranch.
func (db *DB) GetBranch(key, branchName string) (*FObject, error) {
	return db.Get(bg(), key, WithBranch(branchName))
}

// GetUID reads a specific version (M2) and verifies it against uid.
//
// Deprecated: use Get with WithBase.
func (db *DB) GetUID(uid UID) (*FObject, error) {
	return db.Get(bg(), "", WithBase(uid))
}

// PutBranch writes to a named branch, creating it on first write (M3).
//
// Deprecated: use Put with WithBranch.
func (db *DB) PutBranch(key, branchName string, v Value) (UID, error) {
	return db.Put(bg(), key, v, WithBranch(branchName))
}

// PutWithContext writes to a branch with application metadata stored in
// the version's context field (e.g. a commit message).
//
// Deprecated: use Put with WithBranch and WithMeta.
func (db *DB) PutWithContext(key, branchName string, v Value, context []byte) (UID, error) {
	return db.Put(bg(), key, v, WithBranch(branchName), WithMeta(string(context)))
}

// PutGuarded writes only if the branch head still equals guard.
//
// Deprecated: use Put with WithGuard.
func (db *DB) PutGuarded(key, branchName string, v Value, guard UID) (UID, error) {
	return db.Put(bg(), key, v, WithBranch(branchName), WithGuard(guard))
}

// PutBase writes a new version deriving from an explicit base (M4), the
// fork-on-conflict path.
//
// Deprecated: use Put with WithBase.
func (db *DB) PutBase(key string, base UID, v Value) (UID, error) {
	return db.Put(bg(), key, v, WithBase(base))
}

// ForkUID creates a new branch at an arbitrary version (M12).
//
// Deprecated: use Fork with WithBase.
func (db *DB) ForkUID(key string, uid UID, newBranch string) error {
	return db.Fork(bg(), key, newBranch, WithBase(uid))
}

// Rename renames a branch (M13).
//
// Deprecated: use RenameBranch.
func (db *DB) Rename(key, branchName, newName string) error {
	return db.RenameBranch(bg(), key, branchName, newName)
}

// ListTaggedBranches returns a key's named branches and heads (M9). It
// has no error channel, so under a closed ACL it bypasses the access
// controller; use ListBranches, which checks.
//
// Deprecated: use ListBranches.
func (db *DB) ListTaggedBranches(key string) []TaggedBranch {
	return db.eng.ListTaggedBranches([]byte(key))
}

// ListUntaggedBranches returns a key's untagged heads (M10); more than
// one means unresolved fork-on-conflict siblings. It has no error
// channel, so under a closed ACL it bypasses the access controller;
// use ListBranches, which checks.
//
// Deprecated: use ListBranches.
func (db *DB) ListUntaggedBranches(key string) []UID {
	return db.eng.ListUntaggedBranches([]byte(key))
}

// MergeUID merges a specific version into tgtBranch (M6).
//
// Deprecated: use Merge with WithBase.
func (db *DB) MergeUID(key, tgtBranch string, ref UID, res Resolver) (UID, []Conflict, error) {
	return db.Merge(bg(), key, tgtBranch, WithBase(ref), WithResolver(res))
}

// MergeUntagged merges untagged heads into one, replacing them in the
// untagged table (M7).
//
// Deprecated: use Merge with an empty target branch and WithBase.
func (db *DB) MergeUntagged(key string, res Resolver, uids ...UID) (UID, []Conflict, error) {
	opts := []Option{WithResolver(res)}
	for _, u := range uids {
		opts = append(opts, WithBase(u))
	}
	return db.Merge(bg(), key, "", opts...)
}

// TrackUID returns versions at derivation distances [from, to] behind a
// version (M16).
//
// Deprecated: use Track with WithBase.
func (db *DB) TrackUID(uid UID, from, to int) ([]*FObject, error) {
	return db.Track(bg(), "", from, to, WithBase(uid))
}

// LCA returns the least common ancestor of two versions (M17).
func (db *DB) LCA(uid1, uid2 UID) (*FObject, error) {
	return db.eng.LCA(bg(), uid1, uid2)
}

// DiffVersions compares two versions of the same type.
//
// Deprecated: use Diff.
func (db *DB) DiffVersions(uid1, uid2 UID) (*Diff, error) {
	return db.Diff(bg(), "", uid1, uid2)
}

// ValueOf decodes an FObject's value.
//
// Deprecated: use Value.
func (db *DB) ValueOf(o *FObject) (Value, error) {
	return db.Value(bg(), string(o.Key), o)
}

// BlobOf decodes an FObject known to hold a Blob.
func (db *DB) BlobOf(o *FObject) (*Blob, error) {
	v, err := db.eng.Value(o)
	if err != nil {
		return nil, err
	}
	return AsBlob(v)
}

// MapOf decodes an FObject known to hold a Map.
func (db *DB) MapOf(o *FObject) (*Map, error) {
	v, err := db.eng.Value(o)
	if err != nil {
		return nil, err
	}
	return AsMap(v)
}

// ListOf decodes an FObject known to hold a List.
func (db *DB) ListOf(o *FObject) (*List, error) {
	v, err := db.eng.Value(o)
	if err != nil {
		return nil, err
	}
	return AsList(v)
}

// SetOf decodes an FObject known to hold a Set.
func (db *DB) SetOf(o *FObject) (*Set, error) {
	v, err := db.eng.Value(o)
	if err != nil {
		return nil, err
	}
	return AsSet(v)
}

// VerifyHistory verifies the hash chain from a version back to its
// first ancestor and returns the number of versions checked (§3.2).
func (db *DB) VerifyHistory(o *FObject) (int, error) {
	return o.VerifyHistory(db.eng.Store())
}

// bg is the root context behind the deprecated, context-free wrappers
// above: they predate cancellation in the API, so a fresh root is the
// only context they can offer. New code takes a ctx parameter instead.
//
//forkvet:allow ctxflow — deprecated context-free API surface; callers that want cancellation use the Store methods
func bg() context.Context { return context.Background() }
