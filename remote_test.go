package forkbase_test

// Network-serving tests: the wire protocol's failure modes (malformed
// frames, garbage op codes, oversized lengths, mid-request
// disconnects), graceful shutdown, cancel propagation and goroutine
// hygiene. The functional surface is covered by the conformance
// suites, which run every scenario against a live loopback server.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	forkbase "forkbase"
	"forkbase/internal/wire"
)

// startServer serves backend on a loopback listener and returns the
// address plus the server handle for shutdown assertions.
func startServer(t *testing.T, backend forkbase.Store, opts forkbase.ServerOptions) (string, *forkbase.Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := forkbase.NewServer(backend, opts)
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		backend.Close()
	})
	return ln.Addr().String(), srv
}

// TestRemoteTortureMalformedFrames throws every class of wire garbage
// at a live server and, after each attack, proves a healthy client on
// ANOTHER connection still gets served. Nothing here may panic the
// server: a framing violation costs the offending connection only.
func TestRemoteTortureMalformedFrames(t *testing.T) {
	addr, _ := startServer(t, forkbase.Open(), forkbase.ServerOptions{})
	healthy, err := forkbase.Dial(addr, forkbase.RemoteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	ctx := context.Background()

	checkHealthy := func(attack string) {
		t.Helper()
		key := fmt.Sprintf("k-%s", attack)
		uid, err := healthy.Put(ctx, key, forkbase.String("alive"))
		if err != nil {
			t.Fatalf("after %s: healthy put: %v", attack, err)
		}
		o, err := healthy.Get(ctx, key)
		if err != nil || o.UID() != uid {
			t.Fatalf("after %s: healthy get: %v", attack, err)
		}
	}

	raw := func(t *testing.T) net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	// hello authenticates a raw connection so post-handshake garbage
	// is exercised too.
	hello := func(t *testing.T, c net.Conn) {
		t.Helper()
		var e wire.Enc
		e.U32(wire.ProtoVersion)
		e.Str("")
		if err := wire.WriteFrame(c, 1, wire.OpHello, e.Bytes()); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := wire.ReadFrame(c, 0); err != nil {
			t.Fatal(err)
		}
	}
	expectClosed := func(t *testing.T, c net.Conn) {
		t.Helper()
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 1024)
		for {
			if _, err := c.Read(buf); err != nil {
				if errors.Is(err, io.EOF) || strings.Contains(err.Error(), "reset") {
					return
				}
				t.Fatalf("connection not closed: %v", err)
			}
		}
	}

	t.Run("RandomGarbage", func(t *testing.T) {
		c := raw(t)
		// An absurd length prefix followed by noise.
		c.Write([]byte("\xff\xff\xff\xffnonsense stream that never frames"))
		expectClosed(t, c)
		checkHealthy("random-garbage")
	})
	t.Run("OversizedLength", func(t *testing.T) {
		c := raw(t)
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(wire.DefaultMaxFrame+1))
		c.Write(hdr[:])
		expectClosed(t, c)
		checkHealthy("oversized-length")
	})
	t.Run("TruncatedFrame", func(t *testing.T) {
		c := raw(t)
		hello(t, c)
		// A frame claiming 100 bytes, delivering 20, then hanging up.
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], 100)
		c.Write(hdr[:])
		c.Write(make([]byte, 20))
		c.Close()
		checkHealthy("truncated-frame")
	})
	t.Run("BadCRC", func(t *testing.T) {
		c := raw(t)
		hello(t, c)
		frame := wire.AppendFrame(nil, 7, wire.OpListKeys, okStatsOpts())
		frame[len(frame)-1] ^= 0xff // corrupt the crc
		c.Write(frame)
		expectClosed(t, c)
		checkHealthy("bad-crc")
	})
	t.Run("GarbageOpCode", func(t *testing.T) {
		c := raw(t)
		hello(t, c)
		// Well-framed unknown ops get typed errors; the connection
		// SURVIVES and later serves a real request.
		for _, op := range []uint8{0, 99, 200, 255} {
			if err := wire.WriteFrame(c, uint64(op)+10, op, nil); err != nil {
				t.Fatal(err)
			}
			_, _, payload, err := wire.ReadFrame(c, 0)
			if err != nil {
				t.Fatalf("op %d killed the connection: %v", op, err)
			}
			if len(payload) == 0 || payload[0] != 1 {
				t.Fatalf("op %d: expected error response", op)
			}
		}
		if err := wire.WriteFrame(c, 1000, wire.OpListKeys, okStatsOpts()); err != nil {
			t.Fatal(err)
		}
		_, _, payload, err := wire.ReadFrame(c, 0)
		if err != nil || len(payload) == 0 || payload[0] != 0 {
			t.Fatalf("connection unusable after garbage ops: %v", err)
		}
		checkHealthy("garbage-op")
	})
	t.Run("GarbagePayload", func(t *testing.T) {
		c := raw(t)
		hello(t, c)
		// A known op with an undecodable payload fails the request,
		// not the connection.
		if err := wire.WriteFrame(c, 44, wire.OpGet, []byte{0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
		_, _, payload, err := wire.ReadFrame(c, 0)
		if err != nil || len(payload) == 0 || payload[0] != 1 {
			t.Fatalf("garbage payload: %v", err)
		}
		checkHealthy("garbage-payload")
	})
	t.Run("RequestBeforeHello", func(t *testing.T) {
		c := raw(t)
		if err := wire.WriteFrame(c, 5, wire.OpListKeys, okStatsOpts()); err != nil {
			t.Fatal(err)
		}
		// One error response, then the server hangs up.
		_, _, payload, err := wire.ReadFrame(c, 0)
		if err != nil || len(payload) == 0 || payload[0] != 1 {
			t.Fatalf("pre-hello request: %v", err)
		}
		expectClosed(t, c)
		checkHealthy("pre-hello")
	})
	t.Run("MidRequestDisconnect", func(t *testing.T) {
		// A full valid request whose connection dies before the
		// response: the handler must abort via ctx, not linger.
		gate := make(chan struct{})
		bs := newBlockingStore(forkbase.Open(), gate)
		addr2, _ := startServer(t, bs, forkbase.ServerOptions{})
		rc, err := forkbase.Dial(addr2, forkbase.RemoteConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rc.Put(context.Background(), "k", forkbase.String("v")); err != nil {
			t.Fatal(err)
		}
		bs.block.Store(true)
		done := make(chan error, 1)
		go func() {
			_, err := rc.Get(context.Background(), "k")
			done <- err
		}()
		<-bs.entered // the handler is inside Get
		rc.Close()   // mid-request disconnect
		if err := <-done; err == nil {
			t.Fatal("get survived its connection")
		}
		select {
		case <-bs.aborted: // handler observed ctx cancellation
		case <-time.After(5 * time.Second):
			t.Fatal("server handler not cancelled by disconnect")
		}
		close(gate)
		checkHealthy("mid-request-disconnect")
	})
}

// okStatsOpts encodes an empty option set — the minimal valid request
// payload for option-only ops.
func okStatsOpts() []byte {
	var e wire.Enc
	wire.EncodeCallOptions(&e, wire.CallOptions{})
	return e.Bytes()
}

// blockingStore wraps a Store with a Get that parks until its gate
// opens or ctx cancels, signalling both events — the probe for drain
// and cancel-propagation tests.
type blockingStore struct {
	forkbase.Store
	gate chan struct{}

	block       boolFlag
	abortedOnce sync.Once
	aborted     chan struct{}
	entered     chan struct{}
}

func newBlockingStore(backend forkbase.Store, gate chan struct{}) *blockingStore {
	return &blockingStore{
		Store:   backend,
		gate:    gate,
		aborted: make(chan struct{}),
		entered: make(chan struct{}, 16),
	}
}

type boolFlag struct {
	mu sync.Mutex
	v  bool
}

func (b *boolFlag) Store(v bool) { b.mu.Lock(); b.v = v; b.mu.Unlock() }
func (b *boolFlag) Load() bool   { b.mu.Lock(); defer b.mu.Unlock(); return b.v }

func (bs *blockingStore) Get(ctx context.Context, key string, opts ...forkbase.Option) (*forkbase.FObject, error) {
	if bs.block.Load() {
		bs.entered <- struct{}{}
		select {
		case <-bs.gate:
		case <-ctx.Done():
			bs.abortedOnce.Do(func() { close(bs.aborted) })
			return nil, ctx.Err()
		}
	}
	return bs.Store.Get(ctx, key, opts...)
}

// TestRemoteCancelPropagation proves a client-side ctx cancel aborts
// the request server-side: the handler's context fires while the
// request is executing, and the client returns context.Canceled
// immediately rather than waiting the call out.
func TestRemoteCancelPropagation(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	bs := newBlockingStore(forkbase.Open(), gate)
	addr, _ := startServer(t, bs, forkbase.ServerOptions{})
	rc, err := forkbase.Dial(addr, forkbase.RemoteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	ctx := context.Background()
	if _, err := rc.Put(ctx, "k", forkbase.String("v")); err != nil {
		t.Fatal(err)
	}
	bs.block.Store(true)
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := rc.Get(cctx, "k")
		done <- err
	}()
	<-bs.entered
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled remote get: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client did not observe its own cancel")
	}
	select {
	case <-bs.aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("OpCancel did not reach the server handler")
	}
	// The connection it travelled on still works.
	bs.block.Store(false)
	if _, err := rc.Get(ctx, "k"); err != nil {
		t.Fatalf("connection unusable after cancel: %v", err)
	}
}

// TestRemoteGracefulShutdown: Shutdown waits for in-flight requests,
// flushes their responses, refuses new work with ErrServerClosed, and
// leaks no goroutines.
func TestRemoteGracefulShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	gate := make(chan struct{})
	bs := newBlockingStore(forkbase.Open(), gate)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := forkbase.NewServer(bs, forkbase.ServerOptions{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	rc, err := forkbase.Dial(ln.Addr().String(), forkbase.RemoteConfig{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := rc.Put(ctx, "k", forkbase.String("v")); err != nil {
		t.Fatal(err)
	}
	// Park one request inside the store, then start the drain.
	bs.block.Store(true)
	inflight := make(chan error, 1)
	go func() {
		_, err := rc.Get(ctx, "k")
		inflight <- err
	}()
	<-bs.entered
	bs.block.Store(false)
	shutdownDone := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(sctx)
	}()
	// The drain must wait for the parked request...
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown did not wait for in-flight work: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	// ...and once released, the response reaches the client.
	gate <- struct{}{}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request lost during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, forkbase.ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
	// New work is refused.
	if _, err := rc.Get(ctx, "k"); err == nil {
		t.Fatal("get served after shutdown")
	}
	rc.Close()
	bs.Store.Close()
	// Goroutine hygiene: everything the server and client spawned is
	// gone (polling, since conn teardown is asynchronous).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d -> %d\n%s", before, runtime.NumGoroutine(),
				buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRemoteAuth: a server with an auth token refuses bad and missing
// tokens at the handshake and serves matching ones.
func TestRemoteAuth(t *testing.T) {
	addr, _ := startServer(t, forkbase.Open(), forkbase.ServerOptions{AuthToken: "sesame"})
	if _, err := forkbase.Dial(addr, forkbase.RemoteConfig{}); !errors.Is(err, forkbase.ErrAccessDenied) {
		t.Fatalf("tokenless dial: %v", err)
	}
	if _, err := forkbase.Dial(addr, forkbase.RemoteConfig{AuthToken: "wrong"}); !errors.Is(err, forkbase.ErrAccessDenied) {
		t.Fatalf("bad-token dial: %v", err)
	}
	rc, err := forkbase.Dial(addr, forkbase.RemoteConfig{AuthToken: "sesame"})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.Put(context.Background(), "k", forkbase.String("v")); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteCustomResolverRejected: resolvers are functions; only the
// built-ins can cross the wire, and the rejection is local and typed.
func TestRemoteCustomResolverRejected(t *testing.T) {
	addr, _ := startServer(t, forkbase.Open(), forkbase.ServerOptions{})
	rc, err := forkbase.Dial(addr, forkbase.RemoteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	custom := func(c forkbase.Conflict) ([]byte, bool) { return c.A, true }
	_, _, err = rc.Merge(context.Background(), "k", "master", forkbase.WithResolver(custom))
	if !errors.Is(err, forkbase.ErrBadOptions) {
		t.Fatalf("custom resolver: %v", err)
	}
}

// TestRemotePipelining floods one connection with concurrent requests
// and checks every response lands on its caller — the request-id
// multiplexing under real contention.
func TestRemotePipelining(t *testing.T) {
	addr, _ := startServer(t, forkbase.Open(), forkbase.ServerOptions{})
	rc, err := forkbase.Dial(addr, forkbase.RemoteConfig{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	ctx := context.Background()
	const workers, per = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("w%d", w)
			for i := 0; i < per; i++ {
				want := fmt.Sprintf("%d-%d", w, i)
				if _, err := rc.Put(ctx, key, forkbase.String(want)); err != nil {
					errs <- fmt.Errorf("put %s: %w", want, err)
					return
				}
				o, err := rc.Get(ctx, key)
				if err != nil {
					errs <- fmt.Errorf("get %s: %w", want, err)
					return
				}
				if string(o.Data) != want {
					errs <- fmt.Errorf("cross-talk: key %s got %q want %q", key, o.Data, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Each worker's history is its own, fully intact.
	for w := 0; w < workers; w++ {
		hist, err := rc.Track(ctx, fmt.Sprintf("w%d", w), 0, per)
		if err != nil || len(hist) != per {
			t.Fatalf("worker %d history: %d versions, %v", w, len(hist), err)
		}
	}
}

// TestRemoteServerOfCluster serves a ClusterClient — the daemon's
// dispatcher role from the paper: network clients in front, the
// (simulated) servlet cluster behind.
func TestRemoteServerOfCluster(t *testing.T) {
	cc, err := forkbase.OpenCluster(forkbase.ClusterConfig{Nodes: 3, TwoLayer: true})
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := startServer(t, cc, forkbase.ServerOptions{})
	rc, err := forkbase.Dial(addr, forkbase.RemoteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := rc.Put(ctx, fmt.Sprintf("k%d", i), forkbase.String("v")); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := rc.ListKeys(ctx)
	if err != nil || len(keys) != 20 {
		t.Fatalf("cluster behind server: %d keys, %v", len(keys), err)
	}
}
