package forkbase_test

// GC conformance: the garbage collector must behave identically
// through the embedded DB and the cluster client — never losing a
// reachable version (including under concurrent writers), keeping
// Track history behind live heads intact, and actually reclaiming
// chunks only a removed branch referenced.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	forkbase "forkbase"
)

// storedBytes probes how many chunk bytes a backend currently holds.
func storedBytes(t *testing.T, st forkbase.Store) int64 {
	t.Helper()
	switch x := st.(type) {
	case *forkbase.DB:
		return x.Stats().Bytes
	case *forkbase.ClusterClient:
		var total int64
		for _, b := range x.Cluster().NodeStorageBytes() {
			total += b
		}
		return total
	case *forkbase.RemoteStore:
		s, err := x.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return s.Bytes
	}
	t.Fatalf("unknown backend %T", st)
	return 0
}

// blobText materializes a Blob value of a fetched version.
func blobText(t *testing.T, st forkbase.Store, key string, o *forkbase.FObject) []byte {
	t.Helper()
	v, err := st.Value(context.Background(), key, o)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := forkbase.AsBlob(v)
	if err != nil {
		t.Fatal(err)
	}
	data, err := blob.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestGCConformance(t *testing.T) {
	ctx := context.Background()
	scenarios := []struct {
		name string
		run  func(t *testing.T, st forkbase.Store)
	}{
		{"RemovedBranchReclaimed", func(t *testing.T, st forkbase.Store) {
			rng := rand.New(rand.NewSource(5))
			keep := make([]byte, 8<<10)
			rng.Read(keep)
			if _, err := st.Put(ctx, "doc", forkbase.NewBlob(keep)); err != nil {
				t.Fatal(err)
			}
			// A scratch branch accumulates an order of magnitude more
			// data than master, then disappears.
			if err := st.Fork(ctx, "doc", "scratch"); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 12; i++ {
				big := make([]byte, 16<<10)
				rng.Read(big)
				if _, err := st.Put(ctx, "doc", forkbase.NewBlob(big), forkbase.WithBranch("scratch")); err != nil {
					t.Fatal(err)
				}
			}
			before := storedBytes(t, st)
			if err := st.RemoveBranch(ctx, "doc", "scratch"); err != nil {
				t.Fatal(err)
			}
			stats, err := st.GC(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Reclaimed == 0 {
				t.Fatalf("nothing reclaimed: %+v", stats)
			}
			after := storedBytes(t, st)
			if after > before/2 {
				t.Fatalf("scratch-only chunks not reclaimed: %d -> %d bytes", before, after)
			}
			// Master is untouched, bit for bit.
			o, err := st.Get(ctx, "doc")
			if err != nil {
				t.Fatal(err)
			}
			if got := blobText(t, st, "doc", o); !bytes.Equal(got, keep) {
				t.Fatalf("master content changed after GC")
			}
			// The removed branch's head versions are gone for real.
			if _, err := st.ListBranches(ctx, "doc"); err != nil {
				t.Fatal(err)
			}
		}},
		{"TrackHistorySurvives", func(t *testing.T, st forkbase.Store) {
			const versions = 8
			var uids []forkbase.UID
			for i := 0; i < versions; i++ {
				uid, err := st.Put(ctx, "hist", forkbase.String(fmt.Sprintf("v%d", i)))
				if err != nil {
					t.Fatal(err)
				}
				uids = append(uids, uid)
			}
			// Garbage beside it, so the sweep has something to chew on.
			if err := st.Fork(ctx, "hist", "tmp"); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Put(ctx, "hist", forkbase.String("junk"), forkbase.WithBranch("tmp")); err != nil {
				t.Fatal(err)
			}
			if err := st.RemoveBranch(ctx, "hist", "tmp"); err != nil {
				t.Fatal(err)
			}
			if _, err := st.GC(ctx); err != nil {
				t.Fatal(err)
			}
			// The whole derivation chain behind the live head must have
			// survived the collection.
			hist, err := st.Track(ctx, "hist", 0, versions-1)
			if err != nil {
				t.Fatal(err)
			}
			if len(hist) != versions {
				t.Fatalf("history truncated by GC: %d of %d versions", len(hist), versions)
			}
			for i, o := range hist {
				want := fmt.Sprintf("v%d", versions-1-i)
				if string(o.Data) != want {
					t.Fatalf("history[%d] = %q, want %q", i, o.Data, want)
				}
			}
			// Pinned-by-uid reads of old versions still work (M2).
			for i, uid := range uids {
				o, err := st.Get(ctx, "hist", forkbase.WithBase(uid))
				if err != nil {
					t.Fatalf("version %d unreachable after GC: %v", i, err)
				}
				if string(o.Data) != fmt.Sprintf("v%d", i) {
					t.Fatalf("version %d content changed", i)
				}
			}
		}},
		{"UntaggedHeadsSurvive", func(t *testing.T, st forkbase.Store) {
			base, err := st.Put(ctx, "conf", forkbase.String("base"))
			if err != nil {
				t.Fatal(err)
			}
			// Two fork-on-conflict siblings; neither has a branch name,
			// both must count as GC roots.
			s1, err := st.Put(ctx, "conf", forkbase.String("sib1"), forkbase.WithBase(base))
			if err != nil {
				t.Fatal(err)
			}
			s2, err := st.Put(ctx, "conf", forkbase.String("sib2"), forkbase.WithBase(base))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.GC(ctx); err != nil {
				t.Fatal(err)
			}
			for _, uid := range []forkbase.UID{s1, s2, base} {
				if _, err := st.Get(ctx, "conf", forkbase.WithBase(uid)); err != nil {
					t.Fatalf("untagged lineage lost: %v", err)
				}
			}
			bl, err := st.ListBranches(ctx, "conf")
			if err != nil || len(bl.Untagged) != 2 {
				t.Fatalf("untagged heads after GC: %+v (%v)", bl, err)
			}
		}},
		{"PinnedSurvives", func(t *testing.T, st forkbase.Store) {
			uid, err := st.Put(ctx, "pinme", forkbase.NewBlob([]byte("precious bytes")))
			if err != nil {
				t.Fatal(err)
			}
			if err := st.RemoveBranch(ctx, "pinme", forkbase.DefaultBranch); err != nil {
				t.Fatal(err)
			}
			// No branch reaches the version any more; only the pin does.
			if err := st.Pin(ctx, "pinme", uid); err != nil {
				t.Fatal(err)
			}
			if _, err := st.GC(ctx); err != nil {
				t.Fatal(err)
			}
			o, err := st.Get(ctx, "pinme", forkbase.WithBase(uid))
			if err != nil {
				t.Fatalf("pinned version collected: %v", err)
			}
			if got := blobText(t, st, "pinme", o); string(got) != "precious bytes" {
				t.Fatalf("pinned content changed: %q", got)
			}
			// Unpinned, the next collection reclaims it.
			if err := st.Unpin(ctx, "pinme", uid); err != nil {
				t.Fatal(err)
			}
			if _, err := st.GC(ctx); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Get(ctx, "pinme", forkbase.WithBase(uid)); err == nil {
				t.Fatal("unpinned unreachable version survived GC")
			}
		}},
		{"PinAheadOfWriteIsInert", func(t *testing.T, st forkbase.Store) {
			// Pinning a uid that does not exist yet must not wedge the
			// collector (pin-ahead is allowed and simply inert).
			var future forkbase.UID
			future[0] = 0xAB
			if err := st.Pin(ctx, "k", future); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Put(ctx, "k", forkbase.String("v")); err != nil {
				t.Fatal(err)
			}
			if _, err := st.GC(ctx); err != nil {
				t.Fatalf("GC wedged by unwritten pin: %v", err)
			}
			if _, err := st.Get(ctx, "k"); err != nil {
				t.Fatal(err)
			}
		}},
		{"ConcurrentWritersNeverLose", func(t *testing.T, st forkbase.Store) {
			const writers = 4
			const versionsPer = 20
			var wg sync.WaitGroup
			errs := make(chan error, writers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					key := fmt.Sprintf("wkey-%d", w)
					for i := 0; i < versionsPer; i++ {
						if _, err := st.Put(ctx, key, forkbase.String(fmt.Sprintf("w%d-v%d", w, i))); err != nil {
							errs <- fmt.Errorf("writer %d put %d: %w", w, i, err)
							return
						}
						// Churn: branches created and removed mid-flight
						// feed the collector garbage while it runs.
						br := fmt.Sprintf("tmp-%d", i)
						if err := st.Fork(ctx, key, br); err != nil {
							errs <- err
							return
						}
						if _, err := st.Put(ctx, key, forkbase.String("scratch"), forkbase.WithBranch(br)); err != nil {
							errs <- err
							return
						}
						if err := st.RemoveBranch(ctx, key, br); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			gcDone := make(chan struct{})
			go func() {
				defer close(gcDone)
				for i := 0; i < 6; i++ {
					if _, err := st.GC(ctx); err != nil {
						errs <- fmt.Errorf("gc round %d: %w", i, err)
						return
					}
				}
			}()
			wg.Wait()
			<-gcDone
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			// One final collection with the dust settled, then every
			// writer's full history must be reachable and correct.
			if _, err := st.GC(ctx); err != nil {
				t.Fatal(err)
			}
			for w := 0; w < writers; w++ {
				key := fmt.Sprintf("wkey-%d", w)
				hist, err := st.Track(ctx, key, 0, versionsPer-1)
				if err != nil {
					t.Fatalf("writer %d history: %v", w, err)
				}
				if len(hist) != versionsPer {
					t.Fatalf("writer %d lost history: %d of %d", w, len(hist), versionsPer)
				}
				for i, o := range hist {
					want := fmt.Sprintf("w%d-v%d", w, versionsPer-1-i)
					if string(o.Data) != want {
						t.Fatalf("writer %d history[%d] = %q, want %q", w, i, o.Data, want)
					}
				}
			}
		}},
	}
	for _, sc := range scenarios {
		for name, st := range stores(t, nil) {
			st := st
			t.Run(sc.name+"/"+name, func(t *testing.T) {
				defer st.Close()
				sc.run(t, st)
			})
		}
	}
}

// TestGCAccessControl: collection deletes data store-wide, so a closed
// ACL admits it only with global admin permission — on both backends.
func TestGCAccessControl(t *testing.T) {
	ctx := context.Background()
	acl := forkbase.NewACL(false)
	acl.Grant("root", "", "", forkbase.PermAdmin)
	acl.Grant("reader", "", "", forkbase.PermRead)
	for name, st := range stores(t, acl) {
		st := st
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			if _, err := st.GC(ctx, forkbase.WithUser("reader")); !errors.Is(err, forkbase.ErrAccessDenied) {
				t.Fatalf("reader GC: %v, want ErrAccessDenied", err)
			}
			if _, err := st.GC(ctx, forkbase.WithUser("root")); err != nil {
				t.Fatalf("root GC: %v", err)
			}
			// Pins gate collection survival, so placing or removing one
			// requires write permission like any other mutation.
			var uid forkbase.UID
			uid[0] = 1
			if err := st.Pin(ctx, "k", uid, forkbase.WithUser("reader")); !errors.Is(err, forkbase.ErrAccessDenied) {
				t.Fatalf("reader Pin: %v, want ErrAccessDenied", err)
			}
			if err := st.Unpin(ctx, "k", uid, forkbase.WithUser("reader")); !errors.Is(err, forkbase.ErrAccessDenied) {
				t.Fatalf("reader Unpin: %v, want ErrAccessDenied", err)
			}
			if err := st.Pin(ctx, "k", uid, forkbase.WithUser("root")); err != nil {
				t.Fatalf("root Pin: %v", err)
			}
		})
	}
}

// TestGCAutoAfterRemovals: WithAutoGC triggers collection every n-th
// branch removal on both backends.
func TestGCAutoAfterRemovals(t *testing.T) {
	ctx := context.Background()
	cc, err := forkbase.OpenCluster(forkbase.ClusterConfig{Nodes: 3, TwoLayer: true, AutoGCEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	backends := map[string]forkbase.Store{
		"embedded": forkbase.Open(forkbase.WithAutoGC(2)),
		"cluster":  cc,
	}
	for name, st := range backends {
		st := st
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			if _, err := st.Put(ctx, "k", forkbase.String("keep")); err != nil {
				t.Fatal(err)
			}
			var dropped []forkbase.UID
			for i := 0; i < 2; i++ {
				br := fmt.Sprintf("b%d", i)
				if err := st.Fork(ctx, "k", br); err != nil {
					t.Fatal(err)
				}
				uid, err := st.Put(ctx, "k", forkbase.NewBlob(bytes.Repeat([]byte{byte(i)}, 4<<10)),
					forkbase.WithBranch(br))
				if err != nil {
					t.Fatal(err)
				}
				dropped = append(dropped, uid)
				if err := st.RemoveBranch(ctx, "k", br); err != nil {
					t.Fatal(err)
				}
			}
			// The second removal crossed the AutoGCEvery=2 mark, so the
			// dropped branches' versions are gone without an explicit GC.
			for _, uid := range dropped {
				if _, err := st.Get(ctx, "k", forkbase.WithBase(uid)); err == nil {
					t.Fatal("auto-GC did not run: dropped version still readable")
				}
			}
			if _, err := st.Get(ctx, "k"); err != nil {
				t.Fatalf("live head lost by auto-GC: %v", err)
			}
		})
	}
}
