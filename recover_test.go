package forkbase

// Kill-and-reopen recovery of the metadata journal, driven through the
// public API. "Kill" is simulated the way internal/store/crash_test.go
// does: the store directory is copied file-by-file WITHOUT closing the
// DB, so anything still buffered in-process is absent from the copy —
// exactly what an unclean stop loses. The journal writes records
// unbuffered and flushes the chunk log before each record (write-ahead
// ordering), so every copy must reopen into a consistent state where
// all recorded heads resolve.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// killCopy snapshots the on-disk state of a store directory as an
// unclean stop would leave it.
func killCopy(t *testing.T, from string) string {
	t.Helper()
	to := t.TempDir()
	entries, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(from, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return to
}

// TestReopenRecoversMetadata is the headline kill-and-reopen scenario:
// tagged branches (created, forked, renamed, removed), untagged
// fork-on-conflict heads, and pins must all survive an unclean stop.
func TestReopenRecoversMetadata(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	var docHeads []UID
	for i := 0; i < 5; i++ {
		uid, err := db.Put(ctx, "doc", String(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		docHeads = append(docHeads, uid)
	}
	if err := db.Fork(ctx, "doc", "feature"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put(ctx, "doc", String("feature work"), WithBranch("feature")); err != nil {
		t.Fatal(err)
	}
	if err := db.RenameBranch(ctx, "doc", "feature", "release"); err != nil {
		t.Fatal(err)
	}
	if err := db.Fork(ctx, "doc", "scratch"); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveBranch(ctx, "doc", "scratch"); err != nil {
		t.Fatal(err)
	}
	// Untagged heads: two concurrent derivations of the same base.
	base, err := db.Put(ctx, "conflicted", String("base"))
	if err != nil {
		t.Fatal(err)
	}
	ub1, err := db.Put(ctx, "conflicted", String("sibling-1"), WithBase(base))
	if err != nil {
		t.Fatal(err)
	}
	ub2, err := db.Put(ctx, "conflicted", String("sibling-2"), WithBase(base))
	if err != nil {
		t.Fatal(err)
	}
	// Pin a version no branch reaches anymore.
	if err := db.Pin(ctx, "doc", docHeads[1]); err != nil {
		t.Fatal(err)
	}

	// Unclean stop: copy the directory with the DB still open, then
	// reopen the copy like a restarted process.
	re, err := OpenPath(killCopy(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	defer db.Close()

	keys, err := re.ListKeys(ctx)
	if err != nil || len(keys) != 2 {
		t.Fatalf("keys after reopen: %v (%v)", keys, err)
	}
	bl, err := re.ListBranches(ctx, "doc")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"master": true, "release": true}
	if len(bl.Tagged) != 2 || !want[bl.Tagged[0].Name] || !want[bl.Tagged[1].Name] {
		t.Fatalf("tagged branches after reopen: %v", bl.Tagged)
	}
	for _, name := range []string{"master", "release"} {
		o, err := re.Get(ctx, "doc", WithBranch(name))
		if err != nil {
			t.Fatalf("recovered head %s unreadable: %v", name, err)
		}
		if _, err := re.Value(ctx, "doc", o); err != nil {
			t.Fatalf("recovered head %s undecodable: %v", name, err)
		}
	}
	o, err := re.Get(ctx, "doc", WithBranch("master"))
	if err != nil || o.UID() != docHeads[4] {
		t.Fatalf("master head = %v, want %v (%v)", o.UID(), docHeads[4], err)
	}
	cb, err := re.ListBranches(ctx, "conflicted")
	if err != nil {
		t.Fatal(err)
	}
	if len(cb.Untagged) != 2 {
		t.Fatalf("untagged heads after reopen: %v", cb.Untagged)
	}
	gotUB := map[UID]bool{cb.Untagged[0]: true, cb.Untagged[1]: true}
	if !gotUB[ub1] || !gotUB[ub2] {
		t.Fatalf("untagged heads %v, want {%v %v}", cb.Untagged, ub1, ub2)
	}
	pins := re.Engine().Pins()
	if len(pins) != 1 || pins[0] != docHeads[1] {
		t.Fatalf("pins after reopen: %v, want [%v]", pins, docHeads[1])
	}
	// Tagged = doc{master, release} + conflicted{master}.
	ms, ok := re.MetaStats()
	if !ok || ms.Keys != 2 || ms.Tagged != 3 || ms.Untagged != 2 || ms.Pins != 1 {
		t.Fatalf("meta stats after reopen: %+v ok=%v", ms, ok)
	}
}

// TestReopenEveryKillPoint kills the store after every single metadata
// mutation and reopens the copy: the recovered master head must be
// exactly the head at that point, and it must read back intact — the
// per-op equivalent of snapshotting at every journal hook.
func TestReopenEveryKillPoint(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 12; i++ {
		uid, err := db.Put(ctx, "k", String(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		re, err := OpenPath(killCopy(t, dir))
		if err != nil {
			t.Fatalf("op %d: reopen: %v", i, err)
		}
		o, err := re.Get(ctx, "k")
		if err != nil {
			re.Close()
			t.Fatalf("op %d: recovered head unreadable: %v", i, err)
		}
		if o.UID() != uid {
			re.Close()
			t.Fatalf("op %d: head = %v, want %v", i, o.UID(), uid)
		}
		v, err := re.Value(ctx, "k", o)
		if err != nil || string(v.(String)) != fmt.Sprintf("v%d", i) {
			re.Close()
			t.Fatalf("op %d: value = %v (%v)", i, v, err)
		}
		re.Close()
	}
}

// TestReopenTornWALPrefix tears the journal's WAL at arbitrary byte
// offsets on top of a kill copy: the store must reopen, the recovered
// head must be one the key actually had (prefix semantics), and that
// head must resolve to its full value — the write-ahead barrier
// guarantees chunks are never less durable than the record naming
// them.
func TestReopenTornWALPrefix(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	values := map[UID]string{}
	for i := 0; i < 20; i++ {
		v := fmt.Sprintf("version-%d", i)
		uid, err := db.Put(ctx, "k", String(v))
		if err != nil {
			t.Fatal(err)
		}
		values[uid] = v
	}
	snap := killCopy(t, dir)
	walPath := filepath.Join(snap, "meta.wal")
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(0); cut <= int64(len(full)); cut += 13 {
		torn := killCopy(t, snap)
		if err := os.Truncate(filepath.Join(torn, "meta.wal"), cut); err != nil {
			t.Fatal(err)
		}
		re, err := OpenPath(torn)
		if err != nil {
			t.Fatalf("cut@%d: reopen: %v", cut, err)
		}
		o, err := re.Get(ctx, "k")
		if errors.Is(err, ErrKeyNotFound) {
			re.Close() // everything torn away: a clean empty store
			continue
		}
		if err != nil {
			re.Close()
			t.Fatalf("cut@%d: %v", cut, err)
		}
		wantV, known := values[o.UID()]
		if !known {
			re.Close()
			t.Fatalf("cut@%d: head %v is no prefix state", cut, o.UID())
		}
		v, err := re.Value(ctx, "k", o)
		if err != nil || string(v.(String)) != wantV {
			re.Close()
			t.Fatalf("cut@%d: value %v (%v), want %q", cut, v, err, wantV)
		}
		re.Close()
	}
}

// TestReopenThenGCPreservesLiveSet is the hazard PR 3 documented, now
// closed: GC immediately after reopening an uncleanly-stopped store
// must reclaim exactly the garbage (a removed branch's exclusive
// chunks) and nothing live — every branch head, its history, every
// untagged head and every pinned version must survive the collection
// byte-for-byte.
func TestReopenThenGCPreservesLiveSet(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	// Small segments so the sweep genuinely compacts files.
	db, err := OpenPath(dir, Options{SegmentSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	blob := func(seed string, n int) *Blob {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(int(seed[i%len(seed)]) + i/len(seed))
		}
		return NewBlob(data)
	}
	readBlob := func(db *DB, o *FObject) string {
		t.Helper()
		v, err := db.Value(ctx, string(o.Key), o)
		if err != nil {
			t.Fatalf("decode %s: %v", o.UID().Short(), err)
		}
		b, err := AsBlob(v)
		if err != nil {
			t.Fatal(err)
		}
		data, err := b.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	// Live data: three keys with history, a side branch, an untagged
	// head and a pin.
	liveHeads := map[string]UID{}
	for k := 0; k < 3; k++ {
		key := fmt.Sprintf("live-%d", k)
		var last UID
		for v := 0; v < 4; v++ {
			last, err = db.Put(ctx, key, blob(fmt.Sprintf("%s/%d", key, v), 6<<10))
			if err != nil {
				t.Fatal(err)
			}
		}
		liveHeads[key] = last
	}
	if err := db.Fork(ctx, "live-0", "side"); err != nil {
		t.Fatal(err)
	}
	ubase := liveHeads["live-1"]
	untagged, err := db.Put(ctx, "live-1", blob("untagged", 6<<10), WithBase(ubase))
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := db.Put(ctx, "live-2", blob("pinned", 6<<10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put(ctx, "live-2", blob("after-pin", 6<<10)); err != nil {
		t.Fatal(err)
	}
	if err := db.Pin(ctx, "live-2", pinned); err != nil {
		t.Fatal(err)
	}
	// Garbage: a whole key whose only branch is removed pre-crash.
	deadUID, err := db.Put(ctx, "dead", blob("doomed content", 48<<10))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveBranch(ctx, "dead", DefaultBranch); err != nil {
		t.Fatal(err)
	}

	// Record every live version's content pre-crash.
	wantContent := map[UID]string{}
	for key := range liveHeads {
		o, err := db.Get(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		wantContent[o.UID()] = readBlob(db, o)
	}
	for _, uid := range []UID{untagged, pinned} {
		o, err := db.Get(ctx, "x", WithBase(uid))
		if err != nil {
			t.Fatal(err)
		}
		wantContent[uid] = readBlob(db, o)
	}

	re, err := OpenPath(killCopy(t, dir), Options{SegmentSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	defer db.Close()

	stats, err := re.GC(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reclaimed == 0 {
		t.Fatalf("GC after reopen reclaimed nothing, dead key should be garbage: %+v", stats)
	}
	// The dead version is gone...
	if _, err := re.Get(ctx, "dead", WithBase(deadUID)); err == nil {
		t.Fatal("removed branch's version survived reopen+GC")
	}
	// ...and every live version survived intact, history included.
	for uid, want := range wantContent {
		o, err := re.Get(ctx, "x", WithBase(uid))
		if err != nil {
			t.Fatalf("live version %s lost by reopen+GC: %v", uid.Short(), err)
		}
		if got := readBlob(re, o); got != want {
			t.Fatalf("live version %s corrupted by reopen+GC", uid.Short())
		}
	}
	for key := range liveHeads {
		if _, err := re.Track(ctx, key, 0, 3); err != nil {
			t.Fatalf("history of %s broken after reopen+GC: %v", key, err)
		}
	}
	o, err := re.Get(ctx, "live-0", WithBranch("side"))
	if err != nil {
		t.Fatalf("forked branch lost: %v", err)
	}
	if _, err := re.Value(ctx, "live-0", o); err != nil {
		t.Fatal(err)
	}
}

// TestReopenRecoversAcrossJournalCompaction drives enough mutations
// through a tiny snapshot cadence that recovery crosses several
// snapshot+truncate cycles, then kills and reopens.
func TestReopenRecoversAcrossJournalCompaction(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	db, err := OpenPath(dir, WithSnapshotEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var last UID
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i%7)
		last, err = db.Put(ctx, key, String(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	ms, _ := db.MetaStats()
	if ms.SnapshotBytes == 0 {
		t.Fatal("snapshot cadence never fired")
	}
	re, err := OpenPath(killCopy(t, dir), WithSnapshotEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	o, err := re.Get(ctx, "k1") // 99 % 7 == 1: the very last write
	if err != nil || o.UID() != last {
		t.Fatalf("head after compacted recovery: %v (%v)", o, err)
	}
	keys, err := re.ListKeys(ctx)
	if err != nil || len(keys) != 7 {
		t.Fatalf("keys after compacted recovery: %v", keys)
	}
}
