package forkbase

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"forkbase/internal/cluster"
	"forkbase/internal/core"
	"forkbase/internal/servlet"
	"forkbase/internal/store"
)

// ClusterConfig configures OpenCluster.
type ClusterConfig struct {
	// Nodes is the number of servlet/chunk-storage pairs; 0 means 4.
	Nodes int
	// TwoLayer selects 2LP chunk placement (§4.6): ordinary chunks
	// partitioned across all storage instances by cid, meta chunks
	// local. False selects 1LP (all chunks on the owning servlet).
	TwoLayer bool
	// Replicas is the chunk replication factor under 2LP.
	Replicas int
	// NetLatency, when non-zero, is slept once per dispatched request
	// to model the client-servlet network hop.
	NetLatency time.Duration
	// Rebalance enables forwarding POS-Tree construction away from
	// overloaded servlets (§4.6.1); requires TwoLayer.
	Rebalance bool
	// ChunkSizeLog2 sets the expected POS-Tree chunk size to
	// 2^ChunkSizeLog2 bytes; 0 means the paper default of 4 KB.
	ChunkSizeLog2 uint
	// CacheBytes bounds a per-servlet chunk cache in front of the 2LP
	// shared pool — the read path that pays the (simulated) network
	// hop; 0 disables caching. Requires TwoLayer to have any effect.
	CacheBytes int64
	// VerifyReads re-verifies every chunk read (from a servlet's own
	// node storage under either placement, and from the shared pool
	// under TwoLayer) against its cid, so a tampering or corrupting
	// storage node surfaces as ErrCorrupt — or, where a replica holds
	// a good copy, is transparently failed over.
	VerifyReads bool
	// ACL, when set, is the access controller every dispatched request
	// passes through; pair it with WithUser. Nil means open mode.
	ACL *ACL
	// GCThreshold is the live ratio below which GC compacts storage;
	// 0 means the store default of 0.5. The simulated cluster's nodes
	// are memory-backed, so the knob matters once nodes gain
	// file-backed storage, but it is honoured uniformly.
	GCThreshold float64
	// AutoGCEvery, when positive, runs a cluster-wide collection after
	// every AutoGCEvery successful RemoveBranch calls through this
	// client. 0 leaves collection to explicit GC calls.
	AutoGCEvery int
	// Root, when non-empty, makes the simulated cluster durable: each
	// node persists its chunk storage and its servlet's metadata
	// journal under Root/node-<i>, and OpenCluster on the same root
	// (same node count) recovers every servlet's branches, untagged
	// heads and pins. Empty keeps the cluster in memory.
	Root string
	// SyncWrites fsyncs each node's chunk log after every write
	// (Root only).
	SyncWrites bool
	// MetaSync fsyncs each servlet's metadata journal after every
	// branch/pin mutation (Root only).
	MetaSync bool
	// SnapshotEvery is the metadata-journal compaction cadence per
	// servlet (Root only); 0 means the default, negative disables.
	SnapshotEvery int
}

// ClusterClient is the distributed Store implementation: calls are
// routed by the cluster master to the servlet owning the key, pass the
// access controller, and execute on that servlet's execution thread
// (§4.1). It serves the same Store API as the embedded DB, so
// applications move between deployment modes without change.
type ClusterClient struct {
	c *cluster.Cluster

	gcThreshold float64
	autoGCEvery int
	removals    atomic.Int64
}

// OpenCluster starts a simulated ForkBase cluster (in-process servlets
// connected by channels; see internal/cluster) and returns its client.
func OpenCluster(cfg ClusterConfig) (*ClusterClient, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	placement := cluster.OneLayer
	if cfg.TwoLayer {
		placement = cluster.TwoLayer
	}
	c, err := cluster.New(cluster.Options{
		Nodes:         cfg.Nodes,
		Placement:     placement,
		Replicas:      cfg.Replicas,
		NetLatency:    cfg.NetLatency,
		Rebalance:     cfg.Rebalance,
		Tree:          Options{ChunkSizeLog2: cfg.ChunkSizeLog2}.treeConfig(),
		CacheBytes:    cfg.CacheBytes,
		VerifyReads:   cfg.VerifyReads,
		ACL:           cfg.ACL,
		Root:          cfg.Root,
		SyncWrites:    cfg.SyncWrites,
		MetaSync:      cfg.MetaSync,
		SnapshotEvery: cfg.SnapshotEvery,
	})
	if err != nil {
		return nil, err
	}
	return &ClusterClient{c: c, gcThreshold: cfg.GCThreshold, autoGCEvery: cfg.AutoGCEvery}, nil
}

// Cluster exposes the underlying simulated cluster for instrumentation
// (storage distribution, per-servlet queue depths, chunk reads).
func (cc *ClusterClient) Cluster() *cluster.Cluster { return cc.c }

// Close stops all servlets.
func (cc *ClusterClient) Close() error {
	cc.c.Close()
	return nil
}

// checkBaseRead verifies, on the owning servlet, read permission on
// the key a version actually belongs to: a WithBase uid must not act
// as a capability that sidesteps per-key grants.
func (cc *ClusterClient) checkBaseRead(eng *core.Engine, user string, uid UID) error {
	acl := cc.c.ACL()
	if acl.IsOpen() || uid.IsNil() {
		return nil
	}
	obj, err := eng.GetUID(uid)
	if err != nil {
		return err
	}
	return acl.Check(user, string(obj.Key), "", servlet.PermRead)
}

// Get implements Store.
func (cc *ClusterClient) Get(ctx context.Context, key string, opts ...Option) (*FObject, error) {
	o := resolveOpts(opts)
	var out *FObject
	var err error
	if uid, ok := o.base(); ok {
		if o.branchSet {
			return nil, ErrBadOptions
		}
		err = cc.c.ExecAs(ctx, o.user, key, "", servlet.PermRead, func(eng *core.Engine) error {
			obj, err := eng.GetUID(uid)
			if err != nil {
				return err
			}
			// Permission follows the version's own key.
			if err := cc.c.ACL().Check(o.user, string(obj.Key), "", servlet.PermRead); err != nil {
				return err
			}
			out = obj
			return nil
		})
	} else {
		br := o.branchOr(DefaultBranch)
		err = cc.c.ExecAs(ctx, o.user, key, br, servlet.PermRead, func(eng *core.Engine) error {
			var err error
			out, err = eng.Get([]byte(key), br)
			return err
		})
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Put implements Store.
func (cc *ClusterClient) Put(ctx context.Context, key string, v Value, opts ...Option) (UID, error) {
	o := resolveOpts(opts)
	if base, ok := o.base(); ok {
		if o.branchSet || o.guard != nil {
			return UID{}, ErrBadOptions
		}
		var uid UID
		err := cc.c.ExecAs(ctx, o.user, key, "", servlet.PermWrite, func(eng *core.Engine) error {
			if err := cc.checkBaseRead(eng, o.user, base); err != nil {
				return err
			}
			var err error
			uid, err = eng.PutBase([]byte(key), base, v, o.meta)
			return err
		})
		if err != nil {
			return UID{}, err
		}
		return uid, nil
	}
	return cc.c.PutAs(ctx, o.user, key, o.branchOr(DefaultBranch), v, o.meta, o.guard)
}

// Apply implements Store: batched writes dispatch once per owning
// servlet, paying the network hop and queue slot once per group.
func (cc *ClusterClient) Apply(ctx context.Context, b *Batch, opts ...Option) ([]UID, error) {
	if b.err != nil {
		return nil, b.err
	}
	o := resolveOpts(opts)
	return cc.c.PutBatch(ctx, o.user, b.puts)
}

// Fork implements Store.
func (cc *ClusterClient) Fork(ctx context.Context, key, newBranch string, opts ...Option) error {
	o := resolveOpts(opts)
	if uid, ok := o.base(); ok {
		if o.branchSet {
			return ErrBadOptions
		}
		return cc.c.ExecAs(ctx, o.user, key, newBranch, servlet.PermWrite, func(eng *core.Engine) error {
			if err := cc.checkBaseRead(eng, o.user, uid); err != nil {
				return err
			}
			return eng.ForkUID([]byte(key), uid, newBranch)
		})
	}
	ref := o.branchOr(DefaultBranch)
	return cc.c.ExecAs(ctx, o.user, key, newBranch, servlet.PermWrite, func(eng *core.Engine) error {
		return eng.Fork([]byte(key), ref, newBranch)
	})
}

// Merge implements Store.
func (cc *ClusterClient) Merge(ctx context.Context, key, tgtBranch string, opts ...Option) (UID, []Conflict, error) {
	o := resolveOpts(opts)
	var uid UID
	var conflicts []Conflict
	run := func(fn func(eng *core.Engine) error) (UID, []Conflict, error) {
		if err := cc.c.ExecAs(ctx, o.user, key, tgtBranch, servlet.PermWrite, fn); err != nil {
			if ctx.Err() != nil {
				// The execution thread may still be writing conflicts.
				return UID{}, nil, err
			}
			return UID{}, conflicts, err
		}
		return uid, nil, nil
	}
	if tgtBranch == "" {
		if len(o.bases) < 2 || o.branchSet {
			return UID{}, nil, ErrBadOptions
		}
		return run(func(eng *core.Engine) error {
			for _, base := range o.bases {
				if err := cc.checkBaseRead(eng, o.user, base); err != nil {
					return err
				}
			}
			var err error
			uid, conflicts, err = eng.MergeUntagged(ctx, []byte(key), o.resolver, o.meta, o.bases...)
			return err
		})
	}
	if ref, ok := o.base(); ok {
		if o.branchSet || len(o.bases) > 1 {
			return UID{}, nil, ErrBadOptions
		}
		return run(func(eng *core.Engine) error {
			// Merging a version folds its content into the target;
			// that needs read permission on the key it belongs to.
			if err := cc.checkBaseRead(eng, o.user, ref); err != nil {
				return err
			}
			var err error
			uid, conflicts, err = eng.MergeUID(ctx, []byte(key), tgtBranch, ref, o.resolver, o.meta)
			return err
		})
	}
	refBranch := o.branchOr(DefaultBranch)
	return run(func(eng *core.Engine) error {
		var err error
		uid, conflicts, err = eng.MergeBranches(ctx, []byte(key), tgtBranch, refBranch, o.resolver, o.meta)
		return err
	})
}

// Track implements Store.
func (cc *ClusterClient) Track(ctx context.Context, key string, from, to int, opts ...Option) ([]*FObject, error) {
	o := resolveOpts(opts)
	var out []*FObject
	var err error
	if uid, ok := o.base(); ok {
		if o.branchSet {
			return nil, ErrBadOptions
		}
		err = cc.c.ExecAs(ctx, o.user, key, "", servlet.PermRead, func(eng *core.Engine) error {
			if err := cc.checkBaseRead(eng, o.user, uid); err != nil {
				return err
			}
			var err error
			out, err = eng.TrackUID(ctx, uid, from, to)
			return err
		})
	} else {
		br := o.branchOr(DefaultBranch)
		err = cc.c.ExecAs(ctx, o.user, key, br, servlet.PermRead, func(eng *core.Engine) error {
			var err error
			out, err = eng.Track(ctx, []byte(key), br, from, to)
			return err
		})
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Diff implements Store.
func (cc *ClusterClient) Diff(ctx context.Context, key string, a, b UID, opts ...Option) (*Diff, error) {
	o := resolveOpts(opts)
	var d *Diff
	err := cc.c.ExecAs(ctx, o.user, key, "", servlet.PermRead, func(eng *core.Engine) error {
		for _, uid := range []UID{a, b} {
			if err := cc.checkBaseRead(eng, o.user, uid); err != nil {
				return err
			}
		}
		var err error
		d, err = eng.Diff(ctx, a, b)
		return err
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// ListKeys implements Store; it aggregates keys across all servlets
// (M8) and requires global read permission under a closed ACL.
func (cc *ClusterClient) ListKeys(ctx context.Context, opts ...Option) ([]string, error) {
	o := resolveOpts(opts)
	return cc.c.ListKeys(ctx, o.user)
}

// ListBranches implements Store.
func (cc *ClusterClient) ListBranches(ctx context.Context, key string, opts ...Option) (BranchList, error) {
	o := resolveOpts(opts)
	var bl BranchList
	err := cc.c.ExecAs(ctx, o.user, key, "", servlet.PermRead, func(eng *core.Engine) error {
		bl.Tagged = eng.ListTaggedBranches([]byte(key))
		bl.Untagged = eng.ListUntaggedBranches([]byte(key))
		return nil
	})
	if err != nil {
		return BranchList{}, err
	}
	return bl, nil
}

// RenameBranch implements Store.
func (cc *ClusterClient) RenameBranch(ctx context.Context, key, branchName, newName string, opts ...Option) error {
	o := resolveOpts(opts)
	return cc.c.ExecAs(ctx, o.user, key, branchName, servlet.PermAdmin, func(eng *core.Engine) error {
		return eng.Rename([]byte(key), branchName, newName)
	})
}

// RemoveBranch implements Store. With AutoGCEvery configured, every
// n-th successful removal triggers a cluster-wide collection before
// returning.
func (cc *ClusterClient) RemoveBranch(ctx context.Context, key, branchName string, opts ...Option) error {
	o := resolveOpts(opts)
	err := cc.c.ExecAs(ctx, o.user, key, branchName, servlet.PermAdmin, func(eng *core.Engine) error {
		return eng.RemoveBranch([]byte(key), branchName)
	})
	if err != nil {
		return err
	}
	if cc.autoGCEvery > 0 && cc.removals.Add(1)%int64(cc.autoGCEvery) == 0 {
		// An already-running collection (another removal's auto-GC or
		// an explicit GC) covers this garbage; only real failures are
		// reported. The removal itself succeeded either way.
		if _, err := cc.c.GC(ctx, cc.gcThreshold); err != nil && !errors.Is(err, store.ErrSweepInProgress) {
			return fmt.Errorf("forkbase: auto-gc after branch removal: %w", err)
		}
	}
	return nil
}

// Pin implements Store. key routes the pin to the servlet owning it:
// pins are enumerated as GC roots by the owning servlet's engine, and
// the version's meta chunk lives in that servlet's local storage.
func (cc *ClusterClient) Pin(ctx context.Context, key string, uid UID, opts ...Option) error {
	o := resolveOpts(opts)
	return cc.c.ExecAs(ctx, o.user, key, "", servlet.PermWrite, func(eng *core.Engine) error {
		return eng.PinUID(uid)
	})
}

// Unpin implements Store.
func (cc *ClusterClient) Unpin(ctx context.Context, key string, uid UID, opts ...Option) error {
	o := resolveOpts(opts)
	return cc.c.ExecAs(ctx, o.user, key, "", servlet.PermWrite, func(eng *core.Engine) error {
		return eng.UnpinUID(uid)
	})
}

// GC implements Store: one mark-and-sweep collection across every
// servlet and storage node of the cluster (global mark, per-node
// sweep; see cluster.Cluster.GC). Under a closed ACL it requires
// global admin permission — collection deletes data cluster-wide.
func (cc *ClusterClient) GC(ctx context.Context, opts ...Option) (GCStats, error) {
	if err := ctx.Err(); err != nil {
		return GCStats{}, err
	}
	o := resolveOpts(opts)
	if err := cc.c.ACL().Check(o.user, "", "", servlet.PermAdmin); err != nil {
		return GCStats{}, err
	}
	return cc.c.GC(ctx, cc.gcThreshold)
}

// Value implements Store: the decode reads chunks directly from the
// storage visible to the owning servlet, the way dispatchers forward
// Get-Chunk requests straight to chunk storage (§4.6).
func (cc *ClusterClient) Value(ctx context.Context, key string, o *FObject, opts ...Option) (Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	co := resolveOpts(opts)
	// The object names its own key; check permission on that.
	if err := cc.c.ACL().Check(co.user, string(o.Key), "", servlet.PermRead); err != nil {
		return nil, err
	}
	return cc.c.Value(key, o)
}

var _ Store = (*ClusterClient)(nil)
