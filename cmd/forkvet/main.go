// Command forkvet runs the repository's custom static analyzers — the
// invariants the type system cannot express but the store depends on:
//
//	ctxflow         no fresh root contexts in library code (PR 5)
//	lockhold        no blocking calls under a stripe/table/index lock (PR 2-4)
//	wireexhaustive  error codes and opcodes plumbed on both wire ends (PR 5)
//	sentinelcmp     sentinel errors compared with errors.Is, never == (PR 5)
//	chunkalias      no payload mutation after chunk.New takes ownership (PR 6)
//	obsmetrics      metrics registered through internal/obs, not ad-hoc
//	                atomics no export surface can see (PR 10)
//
// Usage:
//
//	forkvet [packages]     # defaults to ./...
//
// Diagnostics print as file:line:col: message (name) and any finding
// makes the process exit 1, so CI can gate on it. A deliberate
// violation is silenced in place with
//
//	//forkvet:allow <analyzer>[,<analyzer>] — reason
//
// on the offending line, the line above, or the declaration's doc
// comment. The reason is mandatory by convention: an allow without a
// why does not survive review.
package main

import (
	"fmt"
	"os"

	"forkbase/internal/analysis"
	"forkbase/internal/analysis/chunkalias"
	"forkbase/internal/analysis/ctxflow"
	"forkbase/internal/analysis/lockhold"
	"forkbase/internal/analysis/obsmetrics"
	"forkbase/internal/analysis/sentinelcmp"
	"forkbase/internal/analysis/wireexhaustive"
)

var analyzers = []*analysis.Analyzer{
	chunkalias.Analyzer,
	ctxflow.Analyzer,
	lockhold.Analyzer,
	obsmetrics.Analyzer,
	sentinelcmp.Analyzer,
	wireexhaustive.Analyzer,
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "forkvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "forkvet:", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "forkvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "forkvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
