// Command forkbench regenerates the tables and figures of the ForkBase
// paper's evaluation (§6). Each experiment prints the rows or series of
// the corresponding table/figure; see EXPERIMENTS.md for the mapping
// and the comparison against the published results.
//
// Usage:
//
//	forkbench [-scale quick|paper] [experiment ...]
//	forkbench ratchet [-tolerance 0.20] <baseline-dir> <fresh-dir>
//
// With no arguments every experiment runs in order. Experiments:
// table3 table4 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16
// fig17 batchput cache gc recover net ablations
//
// The ratchet form compares fresh -json snapshots against committed
// baselines and exits non-zero when a guarded series degraded past
// the tolerance — the perf CI job's pass/fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"forkbase/internal/bench"
)

var experiments = []struct {
	name string
	run  func(io.Writer, bench.Scale) error
}{
	{"table3", bench.RunTable3},
	{"table4", bench.RunTable4},
	{"fig8", bench.RunFig8},
	{"fig9", bench.RunFig9},
	{"fig10", bench.RunFig10},
	{"fig11", bench.RunFig11},
	{"fig12", bench.RunFig12},
	{"fig13", bench.RunFig13},
	{"fig14", bench.RunFig14},
	{"fig15", bench.RunFig15},
	{"fig16", bench.RunFig16},
	{"fig17", bench.RunFig17},
	{"batchput", bench.RunBatchPut},
	{"cache", bench.RunCache},
	{"gc", bench.RunGC},
	{"recover", bench.RunRecover},
	{"net", bench.RunNet},
	{"chunksync", bench.RunChunkSync},
	{"ablations", runAblations},
}

func runAblations(w io.Writer, s bench.Scale) error {
	for _, fn := range []func(io.Writer, bench.Scale) error{
		bench.RunAblationFixedVsPattern,
		bench.RunAblationChunkSize,
		bench.RunAblationHash,
		bench.RunAblationIndexPattern,
	} {
		if err := fn(w, s); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runRatchet implements the "ratchet" subcommand: compare fresh
// snapshot files against baselines and fail on regressions beyond
// the tolerance.
func runRatchet(args []string) {
	fs := flag.NewFlagSet("ratchet", flag.ExitOnError)
	tolerance := fs.Float64("tolerance", 0.20, "allowed fractional degradation per guarded metric")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: forkbench ratchet [-tolerance 0.20] <baseline-dir> <fresh-dir>")
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	failures := bench.Ratchet(os.Stdout, fs.Arg(0), fs.Arg(1), *tolerance)
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nperf ratchet: %d guarded series regressed:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("\nperf ratchet: all %d guarded series within tolerance\n", len(bench.GuardedMetrics))
}

func main() {
	// The ratchet subcommand has its own flags; detect it before the
	// experiment flag set parses.
	if len(os.Args) > 1 && os.Args[1] == "ratchet" {
		runRatchet(os.Args[2:])
		return
	}
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or paper")
	jsonDir := flag.String("json", "", "also write BENCH_<experiment>.json snapshots into this directory")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: forkbench [-scale quick|paper] [experiment ...]\nexperiments:")
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, " %s", e.name)
		}
		fmt.Fprintln(os.Stderr)
	}
	flag.Parse()
	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	want := flag.Args()
	run := func(name string, fn func(io.Writer, bench.Scale) error) {
		fmt.Printf("=== %s ===\n", name)
		if *jsonDir != "" {
			bench.Sink = &bench.Metrics{Experiment: name, Scale: scale.String()}
		}
		t0 := time.Now()
		if err := fn(os.Stdout, scale); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %.1fs)\n\n", name, time.Since(t0).Seconds())
		if sink := bench.Sink; sink != nil {
			bench.Sink = nil
			if len(sink.Rows) == 0 {
				return // experiment has no machine-readable series
			}
			out, err := json.MarshalIndent(sink, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: snapshot: %v\n", name, err)
				os.Exit(1)
			}
			path := filepath.Join(*jsonDir, "BENCH_"+name+".json")
			if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "%s: snapshot: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if len(want) == 0 {
		for _, e := range experiments {
			run(e.name, e.run)
		}
		return
	}
	for _, name := range want {
		found := false
		for _, e := range experiments {
			if e.name == name {
				run(e.name, e.run)
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
	}
}
