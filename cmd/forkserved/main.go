// Command forkserved serves a ForkBase store over the network: the
// paper's dispatcher role (§4.1) as a standalone daemon. Any client
// holding a forkbase.RemoteStore — or forkcli -connect — speaks the
// same unified Store API against it that embedded code uses, over a
// compact length-prefixed binary protocol with request pipelining.
//
// Usage:
//
//	forkserved [-listen addr] [-path dir | -cluster n] [flags]
//
// Backend selection mirrors forkcli: in-memory by default, a
// persistent log-structured store with -path (branches, pins and
// heads recover on restart), or a simulated in-process cluster with
// -cluster n.
//
// Flags:
//
//	-listen addr       TCP listen address (default :7707)
//	-path dir          persist the store in this directory
//	-cluster n         serve a simulated cluster of n servlets
//	-auth token        require this token in each connection's Hello
//	-acl-admin user    close the ACL; grant user global admin
//	-cache bytes       chunk-cache byte budget on the read path
//	-verify            re-verify every chunk read against its cid
//	-sync              fsync the chunk log after every write (-path)
//	-meta-sync         fsync the metadata journal per mutation (-path)
//	-gc-threshold r    segment compaction live-ratio threshold
//	-auto-gc n         run GC after every n branch removals
//	-max-frame bytes   largest request/response frame accepted
//	-chunksync         offer chunk-granular delta transfer (default
//	                   true; capable clients then move only chunks
//	                   the other side is missing)
//	-drain d           graceful-shutdown drain budget (default 30s)
//	-debug-addr addr   serve /metrics (Prometheus text) and
//	                   /debug/pprof on this HTTP address (off by
//	                   default; bind to loopback)
//	-slow-op d         log every op dispatched slower than d (0 = off)
//
// On SIGTERM or SIGINT the daemon drains: the listener closes,
// in-flight requests finish and flush, new requests are refused with
// a typed shutting-down error, and the process exits 0. A second
// signal — or the drain budget expiring — cuts remaining work off.
//
// Security: the protocol is plaintext and the trust boundary is the
// listener. Bind to loopback or a private network; -auth guards
// against accidental cross-talk, not adversaries. The same goes for
// -debug-addr: it is unauthenticated and pprof can dump heap contents,
// so never expose it beyond loopback or a private network. See the
// README's "Serving over the network" section.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"forkbase"
	"forkbase/internal/obs"
)

func main() {
	listen := flag.String("listen", ":7707", "TCP listen address")
	path := flag.String("path", "", "persist the store in this directory")
	nodes := flag.Int("cluster", 0, "serve a simulated cluster of n servlets")
	auth := flag.String("auth", "", "require this token in each connection's Hello")
	aclAdmin := flag.String("acl-admin", "", "close the ACL and grant this user global admin")
	cacheBytes := flag.Int64("cache", 0, "chunk-cache byte budget on the read path (0 = off)")
	verify := flag.Bool("verify", false, "re-verify every chunk read against its cid")
	sync := flag.Bool("sync", false, "fsync the chunk log after every write (-path only)")
	metaSync := flag.Bool("meta-sync", false, "fsync the metadata journal per mutation (-path only)")
	gcThreshold := flag.Float64("gc-threshold", 0, "segment compaction live-ratio threshold (0 = default)")
	autoGC := flag.Int("auto-gc", 0, "run GC after every n branch removals (0 = off)")
	maxFrame := flag.Int("max-frame", 0, "largest request/response frame in bytes (0 = 256 MiB)")
	chunkSync := flag.Bool("chunksync", true, "offer chunk-granular delta transfer to capable clients")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this HTTP address (unauthenticated; keep it on loopback)")
	slowOp := flag.Duration("slow-op", 0, "log every op dispatched slower than this (0 = off)")
	flag.Parse()

	var acl *forkbase.ACL
	if *aclAdmin != "" {
		acl = forkbase.NewACL(false)
		acl.Grant(*aclAdmin, "", "", forkbase.PermAdmin)
	}

	var st forkbase.Store
	var err error
	switch {
	case *nodes > 0 && *path != "":
		log.Fatal("forkserved: -path and -cluster are mutually exclusive")
	case *nodes > 0:
		st, err = forkbase.OpenCluster(forkbase.ClusterConfig{
			Nodes:       *nodes,
			TwoLayer:    true,
			CacheBytes:  *cacheBytes,
			VerifyReads: *verify,
			ACL:         acl,
			GCThreshold: *gcThreshold,
			AutoGCEvery: *autoGC,
		})
	case *path != "":
		st, err = forkbase.OpenPath(*path, forkbase.Options{
			SyncWrites:  *sync,
			MetaSync:    *metaSync,
			CacheBytes:  *cacheBytes,
			VerifyReads: *verify,
			ACL:         acl,
			GCThreshold: *gcThreshold,
			AutoGCEvery: *autoGC,
		})
	default:
		st = forkbase.Open(forkbase.Options{
			CacheBytes:  *cacheBytes,
			VerifyReads: *verify,
			ACL:         acl,
			GCThreshold: *gcThreshold,
			AutoGCEvery: *autoGC,
		})
	}
	if err != nil {
		log.Fatalf("forkserved: open backend: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("forkserved: listen: %v", err)
	}
	srv := forkbase.NewServer(st, forkbase.ServerOptions{
		AuthToken:        *auth,
		MaxFrame:         *maxFrame,
		DisableChunkSync: !*chunkSync,
		Logf:             log.Printf,
		SlowOpThreshold:  *slowOp,
	})

	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(srv.MetricsSnapshot))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("forkserved: debug listen: %v", err)
		}
		log.Printf("forkserved: debug endpoint (metrics, pprof) on %s — unauthenticated, keep it private", dln.Addr())
		go func() {
			if err := http.Serve(dln, mux); err != nil {
				log.Printf("forkserved: debug endpoint: %v", err)
			}
		}()
	}

	backend := "in-memory"
	switch {
	case *nodes > 0:
		backend = fmt.Sprintf("simulated cluster, %d servlets", *nodes)
	case *path != "":
		backend = fmt.Sprintf("persistent store at %s", *path)
	}
	log.Printf("forkserved: serving %s on %s", backend, ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		log.Printf("forkserved: %v: draining (budget %v; signal again to cut off)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		go func() {
			<-sigs
			cancel()
		}()
		err := srv.Shutdown(ctx)
		cancel()
		if cerr := st.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Printf("forkserved: shutdown: %v", err)
			os.Exit(1)
		}
		log.Printf("forkserved: drained cleanly")
	case err := <-serveErr:
		st.Close()
		log.Fatalf("forkserved: serve: %v", err)
	}
}
