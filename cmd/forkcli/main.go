// Command forkcli is an interactive shell over a ForkBase store,
// exercising the Table 1 API from the command line.
//
// Usage:
//
//	forkcli [-path dir]
//
// Without -path the store is in-memory and vanishes on exit; with it,
// versions persist in a log-structured chunk store and remain reachable
// by uid across runs.
//
// Commands:
//
//	put <key> <value...>            write to master
//	putb <key> <branch> <value...>  write to a branch
//	get <key> [branch]              read a branch head
//	getu <uid>                      read a version by uid
//	keys                            list keys
//	branches <key>                  list tagged branches
//	heads <key>                     list untagged heads
//	fork <key> <ref> <new>          fork a branch
//	merge <key> <tgt> <ref>         merge branches (choose-ref on conflict)
//	track <key> [n]                 show the last n versions (default 5)
//	diff <uid1> <uid2>              compare two versions
//	verify <key>                    verify a key's history hash chain
//	stats                           storage statistics
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"forkbase"
)

func main() {
	path := flag.String("path", "", "persist the store in this directory")
	flag.Parse()

	var db *forkbase.DB
	var err error
	if *path != "" {
		db, err = forkbase.OpenPath(*path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("forkbase store at %s\n", *path)
	} else {
		db = forkbase.Open()
		fmt.Println("in-memory forkbase store")
	}
	defer db.Close()

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		args := strings.Fields(sc.Text())
		if len(args) > 0 {
			if args[0] == "quit" || args[0] == "exit" {
				return
			}
			if err := run(db, args); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("> ")
	}
}

func run(db *forkbase.DB, args []string) error {
	switch args[0] {
	case "put":
		if len(args) < 3 {
			return fmt.Errorf("usage: put <key> <value...>")
		}
		uid, err := db.Put(args[1], forkbase.NewBlob([]byte(strings.Join(args[2:], " "))))
		if err != nil {
			return err
		}
		fmt.Println("version", uid.Short())
	case "putb":
		if len(args) < 4 {
			return fmt.Errorf("usage: putb <key> <branch> <value...>")
		}
		uid, err := db.PutBranch(args[1], args[2], forkbase.NewBlob([]byte(strings.Join(args[3:], " "))))
		if err != nil {
			return err
		}
		fmt.Println("version", uid.Short())
	case "get":
		if len(args) < 2 {
			return fmt.Errorf("usage: get <key> [branch]")
		}
		branch := forkbase.DefaultBranch
		if len(args) > 2 {
			branch = args[2]
		}
		o, err := db.GetBranch(args[1], branch)
		if err != nil {
			return err
		}
		return printObject(db, o)
	case "getu":
		if len(args) != 2 {
			return fmt.Errorf("usage: getu <uid>")
		}
		uid, err := parseUID(args[1])
		if err != nil {
			return err
		}
		o, err := db.GetUID(uid)
		if err != nil {
			return err
		}
		return printObject(db, o)
	case "keys":
		for _, k := range db.ListKeys() {
			fmt.Println(k)
		}
	case "branches":
		if len(args) != 2 {
			return fmt.Errorf("usage: branches <key>")
		}
		for _, b := range db.ListTaggedBranches(args[1]) {
			fmt.Printf("%-20s %s\n", b.Name, b.Head)
		}
	case "heads":
		if len(args) != 2 {
			return fmt.Errorf("usage: heads <key>")
		}
		for _, uid := range db.ListUntaggedBranches(args[1]) {
			fmt.Println(uid)
		}
	case "fork":
		if len(args) != 4 {
			return fmt.Errorf("usage: fork <key> <ref-branch> <new-branch>")
		}
		return db.Fork(args[1], args[2], args[3])
	case "merge":
		if len(args) != 4 {
			return fmt.Errorf("usage: merge <key> <tgt-branch> <ref-branch>")
		}
		uid, conflicts, err := db.Merge(args[1], args[2], args[3], forkbase.ChooseB)
		if err != nil {
			return fmt.Errorf("%w (%d conflicts)", err, len(conflicts))
		}
		fmt.Println("merged into", uid.Short())
	case "track":
		if len(args) < 2 {
			return fmt.Errorf("usage: track <key> [n]")
		}
		n := 5
		if len(args) > 2 {
			var err error
			if n, err = strconv.Atoi(args[2]); err != nil {
				return err
			}
		}
		hist, err := db.Track(args[1], forkbase.DefaultBranch, 0, n-1)
		if err != nil {
			return err
		}
		for i, o := range hist {
			fmt.Printf("-%d %s depth=%d\n", i, o.UID().Short(), o.Depth)
		}
	case "diff":
		if len(args) != 3 {
			return fmt.Errorf("usage: diff <uid1> <uid2>")
		}
		u1, err := parseUID(args[1])
		if err != nil {
			return err
		}
		u2, err := parseUID(args[2])
		if err != nil {
			return err
		}
		d, err := db.DiffVersions(u1, u2)
		if err != nil {
			return err
		}
		switch {
		case d.Sorted != nil:
			fmt.Printf("+%d -%d ~%d (leaves shared %d)\n",
				len(d.Sorted.Added), len(d.Sorted.Removed), len(d.Sorted.Modified), d.Sorted.SharedLeaves)
		case d.Unsorted != nil:
			fmt.Printf("shared leaves %d, only-left %d, only-right %d\n",
				d.Unsorted.SharedLeaves, d.Unsorted.OnlyA, d.Unsorted.OnlyB)
		default:
			fmt.Println("equal:", d.PrimitiveEqual)
		}
	case "verify":
		if len(args) != 2 {
			return fmt.Errorf("usage: verify <key>")
		}
		o, err := db.Get(args[1])
		if err != nil {
			return err
		}
		n, err := db.VerifyHistory(o)
		if err != nil {
			return err
		}
		fmt.Printf("ok: %d versions verified\n", n)
	case "stats":
		fmt.Println(db.Stats())
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
	return nil
}

func printObject(db *forkbase.DB, o *forkbase.FObject) error {
	v, err := db.ValueOf(o)
	if err != nil {
		return err
	}
	switch x := v.(type) {
	case *forkbase.Blob:
		data, err := x.Bytes()
		if err != nil {
			return err
		}
		fmt.Printf("%s (uid %s, depth %d)\n", data, o.UID().Short(), o.Depth)
	default:
		fmt.Printf("%v (uid %s, depth %d)\n", v, o.UID().Short(), o.Depth)
	}
	return nil
}

func parseUID(s string) (forkbase.UID, error) {
	return forkbase.ParseUID(s)
}
