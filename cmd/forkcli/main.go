// Command forkcli is an interactive shell over a ForkBase store,
// exercising the unified Store API from the command line. The same
// shell drives every deployment mode: embedded (default, optionally
// persistent with -path), a simulated cluster (-cluster N), or a
// running forkserved daemon over TCP (-connect host:port) — the point
// of the one-surface client API.
//
// Usage:
//
//	forkcli [-path dir | -cluster n | -connect host:port] [-user name]
//	        [-token t] [-cache bytes] [-verify] [-chunksync]
//	        [-chunkcache dir]
//
// Without -path the store is in-memory and vanishes on exit; with it,
// versions persist in a log-structured chunk store and remain reachable
// by uid across runs. With -cluster n, requests dispatch to n
// in-process servlets by key hash. With -connect, every subcommand
// below runs against the remote daemon (-token supplies its -auth
// token); -user still selects the identity its ACL checks. Adding
// -chunksync moves large values chunk-by-chunk — only chunks the other
// side is missing cross the wire — and -chunkcache keeps the fetched
// chunks in a directory that outlives the session, so repeat reads of
// barely-changed objects transfer only their deltas (-cache bounds
// that cache's in-memory tier).
//
// Commands:
//
//	put <key> <value...>            write to master
//	putb <key> <branch> <value...>  write to a branch
//	batch <key=value> [...]         batched write (one lock/dispatch group)
//	get <key> [branch]              read a branch head
//	getu <key> <uid>                read a version by uid
//	keys                            list keys
//	branches <key>                  list tagged branches and untagged heads
//	fork <key> <ref> <new>          fork a branch
//	merge <key> <tgt> <ref>         merge branches (choose-ref on conflict)
//	track <key> [n]                 show the last n versions (default 5)
//	diff <key> <uid1> <uid2>        compare two versions
//	verify <key>                    verify a key's history hash chain
//	rmbranch <key> <branch>         drop a branch name (its exclusive
//	                                chunks become garbage)
//	gc                              collect unreachable chunks and
//	                                compact storage
//	stats                           storage statistics (embedded only)
//	stats -server [-watch d]        live per-op server metrics over the
//	                                wire (-connect only): request counts,
//	                                error counts and latency quantiles;
//	                                -watch re-polls every d and shows
//	                                deltas until interrupted
//	info                            store stats plus recovered metadata:
//	                                keys, branches, untagged heads, pins,
//	                                journal/snapshot sizes — the state a
//	                                reopen recovers
//	quit
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"forkbase"
)

func main() {
	path := flag.String("path", "", "persist the store in this directory")
	nodes := flag.Int("cluster", 0, "run against a simulated cluster of n servlets")
	connect := flag.String("connect", "", "drive a running forkserved at this host:port")
	token := flag.String("token", "", "auth token for -connect (the daemon's -auth)")
	user := flag.String("user", "", "user the requests run as")
	cacheBytes := flag.Int64("cache", 0, "chunk-cache byte budget on the read path (0 = off)")
	verify := flag.Bool("verify", false, "re-verify every chunk read against its cid")
	chunkSync := flag.Bool("chunksync", false, "with -connect: transfer chunk deltas instead of whole values")
	chunkCache := flag.String("chunkcache", "", "with -connect: persist fetched chunks in this directory (implies -chunksync)")
	flag.Parse()

	var st forkbase.Store
	switch {
	case *connect != "":
		rs, err := forkbase.Dial(*connect, forkbase.RemoteConfig{
			AuthToken:       *token,
			ChunkSync:       *chunkSync,
			ChunkCacheDir:   *chunkCache,
			ChunkCacheBytes: *cacheBytes,
		})
		if err != nil {
			log.Fatal(err)
		}
		st = rs
		fmt.Printf("forkbase server at %s\n", *connect)
	case *nodes > 0:
		cc, err := forkbase.OpenCluster(forkbase.ClusterConfig{
			Nodes:       *nodes,
			TwoLayer:    true,
			CacheBytes:  *cacheBytes,
			VerifyReads: *verify,
		})
		if err != nil {
			log.Fatal(err)
		}
		st = cc
		fmt.Printf("simulated forkbase cluster, %d servlets\n", *nodes)
	case *path != "":
		db, err := forkbase.OpenPath(*path,
			forkbase.WithCacheBytes(*cacheBytes), forkbase.WithVerifyReads(*verify))
		if err != nil {
			log.Fatal(err)
		}
		st = db
		fmt.Printf("forkbase store at %s\n", *path)
	default:
		st = forkbase.Open(
			forkbase.WithCacheBytes(*cacheBytes), forkbase.WithVerifyReads(*verify))
		fmt.Println("in-memory forkbase store")
	}
	defer st.Close()

	sh := &shell{st: st, user: *user}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		args := strings.Fields(sc.Text())
		if len(args) > 0 {
			if args[0] == "quit" || args[0] == "exit" {
				return
			}
			if err := sh.run(args); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("> ")
	}
}

type shell struct {
	st   forkbase.Store
	user string
}

// as extends opts with the shell's user identity.
func (sh *shell) as(opts ...forkbase.Option) []forkbase.Option {
	if sh.user != "" {
		opts = append(opts, forkbase.WithUser(sh.user))
	}
	return opts
}

func (sh *shell) run(args []string) error {
	ctx := context.Background()
	st := sh.st
	switch args[0] {
	case "put":
		if len(args) < 3 {
			return fmt.Errorf("usage: put <key> <value...>")
		}
		uid, err := st.Put(ctx, args[1], forkbase.NewBlob([]byte(strings.Join(args[2:], " "))), sh.as()...)
		if err != nil {
			return err
		}
		fmt.Println("version", uid.Short())
	case "putb":
		if len(args) < 4 {
			return fmt.Errorf("usage: putb <key> <branch> <value...>")
		}
		uid, err := st.Put(ctx, args[1], forkbase.NewBlob([]byte(strings.Join(args[3:], " "))),
			sh.as(forkbase.WithBranch(args[2]))...)
		if err != nil {
			return err
		}
		fmt.Println("version", uid.Short())
	case "batch":
		if len(args) < 2 {
			return fmt.Errorf("usage: batch <key=value> [...]")
		}
		b := forkbase.NewBatch()
		for _, kv := range args[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("batch entries are key=value, got %q", kv)
			}
			b.Put(k, forkbase.NewBlob([]byte(v)))
		}
		uids, err := st.Apply(ctx, b, sh.as()...)
		if err != nil {
			return err
		}
		for i, uid := range uids {
			fmt.Printf("%s -> version %s\n", args[1+i], uid.Short())
		}
	case "get":
		if len(args) < 2 {
			return fmt.Errorf("usage: get <key> [branch]")
		}
		opts := sh.as()
		if len(args) > 2 {
			opts = append(opts, forkbase.WithBranch(args[2]))
		}
		o, err := st.Get(ctx, args[1], opts...)
		if err != nil {
			return err
		}
		return sh.printObject(args[1], o)
	case "getu":
		if len(args) != 3 {
			return fmt.Errorf("usage: getu <key> <uid>")
		}
		uid, err := forkbase.ParseUID(args[2])
		if err != nil {
			return err
		}
		o, err := st.Get(ctx, args[1], sh.as(forkbase.WithBase(uid))...)
		if err != nil {
			return err
		}
		return sh.printObject(args[1], o)
	case "keys":
		keys, err := st.ListKeys(ctx, sh.as()...)
		if err != nil {
			return err
		}
		for _, k := range keys {
			fmt.Println(k)
		}
	case "branches":
		if len(args) != 2 {
			return fmt.Errorf("usage: branches <key>")
		}
		bl, err := st.ListBranches(ctx, args[1], sh.as()...)
		if err != nil {
			return err
		}
		for _, b := range bl.Tagged {
			fmt.Printf("%-20s %s\n", b.Name, b.Head)
		}
		for _, uid := range bl.Untagged {
			fmt.Printf("%-20s %s\n", "(untagged)", uid)
		}
	case "fork":
		if len(args) != 4 {
			return fmt.Errorf("usage: fork <key> <ref-branch> <new-branch>")
		}
		return st.Fork(ctx, args[1], args[3], sh.as(forkbase.WithBranch(args[2]))...)
	case "merge":
		if len(args) != 4 {
			return fmt.Errorf("usage: merge <key> <tgt-branch> <ref-branch>")
		}
		uid, conflicts, err := st.Merge(ctx, args[1], args[2],
			sh.as(forkbase.WithBranch(args[3]), forkbase.WithResolver(forkbase.ChooseB))...)
		if err != nil {
			return fmt.Errorf("%w (%d conflicts)", err, len(conflicts))
		}
		fmt.Println("merged into", uid.Short())
	case "track":
		if len(args) < 2 {
			return fmt.Errorf("usage: track <key> [n]")
		}
		n := 5
		if len(args) > 2 {
			var err error
			if n, err = strconv.Atoi(args[2]); err != nil {
				return err
			}
		}
		hist, err := st.Track(ctx, args[1], 0, n-1, sh.as()...)
		if err != nil {
			return err
		}
		for i, o := range hist {
			fmt.Printf("-%d %s depth=%d\n", i, o.UID().Short(), o.Depth)
		}
	case "diff":
		if len(args) != 4 {
			return fmt.Errorf("usage: diff <key> <uid1> <uid2>")
		}
		u1, err := forkbase.ParseUID(args[2])
		if err != nil {
			return err
		}
		u2, err := forkbase.ParseUID(args[3])
		if err != nil {
			return err
		}
		d, err := st.Diff(ctx, args[1], u1, u2, sh.as()...)
		if err != nil {
			return err
		}
		switch {
		case d.Sorted != nil:
			fmt.Printf("+%d -%d ~%d (leaves shared %d)\n",
				len(d.Sorted.Added), len(d.Sorted.Removed), len(d.Sorted.Modified), d.Sorted.SharedLeaves)
		case d.Unsorted != nil:
			fmt.Printf("shared leaves %d, only-left %d, only-right %d\n",
				d.Unsorted.SharedLeaves, d.Unsorted.OnlyA, d.Unsorted.OnlyB)
		default:
			fmt.Println("equal:", d.PrimitiveEqual)
		}
	case "verify":
		if len(args) != 2 {
			return fmt.Errorf("usage: verify <key>")
		}
		db, ok := sh.st.(*forkbase.DB)
		if !ok {
			return fmt.Errorf("verify is embedded-only for now")
		}
		o, err := st.Get(ctx, args[1], sh.as()...)
		if err != nil {
			return err
		}
		n, err := db.VerifyHistory(o)
		if err != nil {
			return err
		}
		fmt.Printf("ok: %d versions verified\n", n)
	case "rmbranch":
		if len(args) != 3 {
			return fmt.Errorf("usage: rmbranch <key> <branch>")
		}
		if err := st.RemoveBranch(ctx, args[1], args[2], sh.as()...); err != nil {
			return err
		}
		fmt.Printf("removed %s/%s (run gc to reclaim its chunks)\n", args[1], args[2])
	case "gc":
		stats, err := st.GC(ctx, sh.as()...)
		if err != nil {
			return err
		}
		fmt.Println(stats)
	case "stats":
		if len(args) > 1 && args[1] == "-server" {
			return sh.serverStats(ctx, args[2:])
		}
		switch x := sh.st.(type) {
		case *forkbase.DB:
			fmt.Println(x.Stats())
		case *forkbase.RemoteStore:
			s, err := x.Stats(ctx)
			if err != nil {
				return err
			}
			fmt.Println(s)
		default:
			return fmt.Errorf("stats needs an embedded or remote store")
		}
	case "info":
		return sh.info(ctx)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
	return nil
}

// serverStats renders the server's live per-op metrics (stats -server):
// one row per op that has seen traffic, with request and error counts
// and latency quantiles from the server's histograms. With -watch it
// re-polls on an interval and shows per-interval deltas — quantiles
// then describe only the ops of that interval — until interrupted.
func (sh *shell) serverStats(ctx context.Context, args []string) error {
	rs, ok := sh.st.(*forkbase.RemoteStore)
	if !ok {
		return fmt.Errorf("stats -server needs -connect")
	}
	var watch time.Duration
	for i := 0; i < len(args); i++ {
		if args[i] != "-watch" || i+1 >= len(args) {
			return fmt.Errorf("usage: stats -server [-watch <interval>]")
		}
		d, err := time.ParseDuration(args[i+1])
		if err != nil || d <= 0 {
			return fmt.Errorf("-watch needs a positive duration, got %q", args[i+1])
		}
		watch = d
		i++
	}
	prev, err := rs.ServerStats(ctx)
	if err != nil {
		if errors.Is(err, forkbase.ErrUnsupported) {
			return fmt.Errorf("this forkserved predates per-op metrics (no server_stats op); upgrade the daemon to use stats -server")
		}
		return err
	}
	printServerStats(prev, nil)
	for watch > 0 {
		time.Sleep(watch)
		cur, err := rs.ServerStats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("--- %s (last %v) ---\n", time.Now().Format("15:04:05"), watch)
		printServerStats(cur, prev)
		prev = cur
	}
	return nil
}

// tagValue extracts v from a `k="v"` tag string.
func tagValue(tags, key string) string {
	_, rest, ok := strings.Cut(tags, key+`="`)
	if !ok {
		return ""
	}
	v, _, _ := strings.Cut(rest, `"`)
	return v
}

// printServerStats renders one snapshot; with prev non-nil every
// counter and histogram is differenced against it first, so the table
// describes only the traffic since the previous poll.
func printServerStats(cur, prev []forkbase.MetricSample) {
	base := make(map[string]forkbase.MetricSample, len(prev))
	for _, s := range prev {
		base[s.Name+"\x00"+s.Tags] = s
	}
	diff := func(s forkbase.MetricSample) forkbase.MetricSample {
		p, ok := base[s.Name+"\x00"+s.Tags]
		if !ok {
			return s
		}
		s.Value -= p.Value
		s.Sum -= p.Sum
		if len(s.Buckets) == len(p.Buckets) {
			b := make([]uint64, len(s.Buckets))
			for i := range b {
				b[i] = s.Buckets[i] - p.Buckets[i]
			}
			s.Buckets = b
		}
		return s
	}
	type row struct {
		reqs, errs    int64
		p50, p90, p99 time.Duration
	}
	rows := make(map[string]*row)
	var ops []string
	get := func(op string) *row {
		r, ok := rows[op]
		if !ok {
			r = &row{}
			rows[op] = r
			ops = append(ops, op)
		}
		return r
	}
	for _, s := range cur {
		op := tagValue(s.Tags, "op")
		if op == "" {
			continue
		}
		switch s.Name {
		case "forkbase_server_requests_total":
			get(op).reqs = diff(s).Value
		case "forkbase_server_request_errors_total":
			get(op).errs = diff(s).Value
		case "forkbase_server_latency_ns":
			d := diff(s)
			r := get(op)
			r.p50 = time.Duration(d.Quantile(0.5))
			r.p90 = time.Duration(d.Quantile(0.9))
			r.p99 = time.Duration(d.Quantile(0.99))
		}
	}
	fmt.Printf("%-16s %10s %8s %10s %10s %10s\n", "op", "requests", "errors", "p50", "p90", "p99")
	for _, op := range ops {
		r := rows[op]
		if r.reqs == 0 {
			continue
		}
		fmt.Printf("%-16s %10d %8d %10v %10v %10v\n", op, r.reqs, r.errs, r.p50, r.p90, r.p99)
	}
	for _, s := range cur {
		switch s.Name {
		case "forkbase_server_wire_bytes_total", "forkbase_server_chunksync_bytes_total":
			if d := diff(s); d.Value > 0 {
				fmt.Printf("%s{%s}: %d bytes\n", strings.TrimPrefix(s.Name, "forkbase_server_"), s.Tags, d.Value)
			}
		case "forkbase_server_inflight_requests", "forkbase_server_queue_depth":
			fmt.Printf("%s: %d\n", strings.TrimPrefix(s.Name, "forkbase_server_"), s.Value)
		}
	}
}

// info prints store statistics plus the metadata a reopen would
// recover: every key's branches and untagged heads, the pin set, and
// the journal/snapshot footprint — the quickest way to eyeball that a
// reopened store came back with the state the previous process held.
func (sh *shell) info(ctx context.Context) error {
	keys, err := sh.st.ListKeys(ctx, sh.as()...)
	if err != nil {
		return err
	}
	tagged, untagged := 0, 0
	for _, k := range keys {
		bl, err := sh.st.ListBranches(ctx, k, sh.as()...)
		if err != nil {
			return err
		}
		tagged += len(bl.Tagged)
		untagged += len(bl.Untagged)
		fmt.Printf("%s: %d branches, %d untagged heads\n", k, len(bl.Tagged), len(bl.Untagged))
		for _, b := range bl.Tagged {
			fmt.Printf("  %-20s %s\n", b.Name, b.Head.Short())
		}
		for _, uid := range bl.Untagged {
			fmt.Printf("  %-20s %s\n", "(untagged)", uid.Short())
		}
	}
	fmt.Printf("total: %d keys, %d branches, %d untagged heads\n", len(keys), tagged, untagged)
	if rs, ok := sh.st.(*forkbase.RemoteStore); ok {
		if s, err := rs.Stats(ctx); err == nil {
			fmt.Println(s)
		}
		fmt.Println("(pins and journals live on the server)")
		return nil
	}
	db, ok := sh.st.(*forkbase.DB)
	if !ok {
		fmt.Println("(per-servlet pins and journals: cluster nodes hold their own)")
		return nil
	}
	pins := db.Engine().Pins()
	fmt.Printf("pins: %d\n", len(pins))
	for _, uid := range pins {
		fmt.Printf("  %s\n", uid.Short())
	}
	if ms, ok := db.MetaStats(); ok {
		fmt.Println(ms)
	} else {
		fmt.Println("journal: none (in-memory store)")
	}
	fmt.Println(db.Stats())
	return nil
}

func (sh *shell) printObject(key string, o *forkbase.FObject) error {
	v, err := sh.st.Value(context.Background(), key, o, sh.as()...)
	if err != nil {
		return err
	}
	switch x := v.(type) {
	case *forkbase.Blob:
		data, err := x.Bytes()
		if err != nil {
			return err
		}
		fmt.Printf("%s (uid %s, depth %d)\n", data, o.UID().Short(), o.Depth)
	default:
		fmt.Printf("%v (uid %s, depth %d)\n", v, o.UID().Short(), o.Depth)
	}
	return nil
}
