package forkbase_test

// Hot-path behaviour of the network server: duplicate request-id
// refusal, server-side put coalescing under pipelined bursts, and
// steady-state allocation pins for the client round trip. These are
// the regression nets for the pooled/batched request path — the
// conformance suites prove the semantics, these prove the plumbing
// underneath them cannot silently regress.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	forkbase "forkbase"
	"forkbase/internal/types"
	"forkbase/internal/wire"
)

// rawHello dials addr and completes the Hello handshake, returning a
// connection ready for hand-built frames.
func rawHello(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	var e wire.Enc
	e.U32(wire.ProtoVersion)
	e.Str("")
	if err := wire.WriteFrame(c, 1, wire.OpHello, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, _, payload, err := wire.ReadFrame(c, 0); err != nil || len(payload) == 0 || payload[0] != 0 {
		t.Fatalf("hello failed: %v", err)
	}
	return c
}

// getPayload builds an OpGet request body for key with default options.
func getPayload(key string) []byte {
	var e wire.Enc
	wire.EncodeCallOptions(&e, wire.CallOptions{})
	e.Str(key)
	return e.Bytes()
}

// putPayload builds an OpPut request body writing String(val) to key.
func putPayload(t *testing.T, key, val string) []byte {
	t.Helper()
	var e wire.Enc
	wire.EncodeCallOptions(&e, wire.CallOptions{})
	e.Str(key)
	if err := wire.EncodeValue(&e, types.String(val)); err != nil {
		t.Fatal(err)
	}
	return e.Bytes()
}

// TestRemoteDuplicateRequestID proves reusing an in-flight request id
// is refused with ErrDuplicateRequest, does not disturb the original
// request, and costs the connection nothing: after the refusal the
// original can still be cancelled and the connection still serves.
func TestRemoteDuplicateRequestID(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	bs := newBlockingStore(forkbase.Open(), gate)
	addr, _ := startServer(t, bs, forkbase.ServerOptions{})

	// Seed a key through a real client so Gets have something to find.
	rc, err := forkbase.Dial(addr, forkbase.RemoteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.Put(context.Background(), "k", forkbase.String("v")); err != nil {
		t.Fatal(err)
	}

	c := rawHello(t, addr)
	c.SetDeadline(time.Now().Add(10 * time.Second))

	// Park a Get under id 7.
	bs.block.Store(true)
	if err := wire.WriteFrame(c, 7, wire.OpGet, getPayload("k")); err != nil {
		t.Fatal(err)
	}
	<-bs.entered // the handler is inside Get, id 7 is registered

	// Reuse id 7 while it is in flight: the newcomer must be refused
	// with the typed sentinel, and the refusal must arrive while the
	// original is still parked.
	if err := wire.WriteFrame(c, 7, wire.OpGet, getPayload("k")); err != nil {
		t.Fatal(err)
	}
	reqID, op, payload, err := wire.ReadFrame(c, 0)
	if err != nil {
		t.Fatalf("duplicate id killed the connection: %v", err)
	}
	if reqID != 7 || op != wire.OpGet {
		t.Fatalf("unexpected response frame: id %d op %d", reqID, op)
	}
	if len(payload) == 0 || payload[0] != 1 {
		t.Fatal("duplicate id was not refused")
	}
	d := wire.NewDec(payload[1:])
	ep, derr := wire.DecodeError(d)
	if derr != nil {
		t.Fatal(derr)
	}
	if !errors.Is(ep.Err, forkbase.ErrDuplicateRequest) {
		t.Fatalf("refusal error = %v, want ErrDuplicateRequest", ep.Err)
	}

	// The ORIGINAL registration must have survived the refusal: an
	// OpCancel for id 7 still reaches it and aborts the parked Get.
	var ce wire.Enc
	ce.U64(7)
	if err := wire.WriteFrame(c, 8, wire.OpCancel, ce.Bytes()); err != nil {
		t.Fatal(err)
	}
	reqID, _, payload, err = wire.ReadFrame(c, 0)
	if err != nil {
		t.Fatalf("cancel after duplicate: %v", err)
	}
	if reqID != 7 || len(payload) == 0 || payload[0] != 1 {
		t.Fatalf("expected the original id-7 request to fail with cancellation, got id %d", reqID)
	}
	select {
	case <-bs.aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("original request not cancelled — its registration was lost")
	}

	// The connection survives all of it and the id is free again.
	bs.block.Store(false)
	if err := wire.WriteFrame(c, 7, wire.OpGet, getPayload("k")); err != nil {
		t.Fatal(err)
	}
	if _, _, payload, err = wire.ReadFrame(c, 0); err != nil || len(payload) == 0 || payload[0] != 0 {
		t.Fatalf("connection unusable after duplicate-id refusal: %v", err)
	}
}

// TestRemotePutCoalescingBurst fires a pipelined burst of Put frames
// in a single TCP segment — the shape the server coalesces into one
// engine batch — and proves per-request semantics hold: every request
// gets its own response, an undecodable value fails only its own put,
// and a repeated key (which cannot join the batch) still commits.
func TestRemotePutCoalescingBurst(t *testing.T) {
	db := forkbase.Open()
	addr, _ := startServer(t, db, forkbase.ServerOptions{})
	c := rawHello(t, addr)
	c.SetDeadline(time.Now().Add(10 * time.Second))

	// ids 100..105: distinct keys, coalescible. id 106: garbage value
	// bytes (fails decode on the worker). id 107: repeats key ck-0, so
	// it must break out of the batch and run alone.
	var burst []byte
	for i := 0; i < 6; i++ {
		burst = wire.AppendFrame(burst, uint64(100+i), wire.OpPut,
			putPayload(t, fmt.Sprintf("ck-%d", i), fmt.Sprintf("v%d", i)))
	}
	var ge wire.Enc
	wire.EncodeCallOptions(&ge, wire.CallOptions{})
	ge.Str("ck-bad")
	ge.U8(0xff) // unknown value type code
	burst = wire.AppendFrame(burst, 106, wire.OpPut, ge.Bytes())
	burst = wire.AppendFrame(burst, 107, wire.OpPut, putPayload(t, "ck-0", "v0b"))
	if _, err := c.Write(burst); err != nil {
		t.Fatal(err)
	}

	// Eight responses, in whatever order the workers finish; key them
	// by request id.
	status := make(map[uint64]byte)
	for i := 0; i < 8; i++ {
		reqID, op, payload, err := wire.ReadFrame(c, 0)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if op != wire.OpPut || len(payload) == 0 {
			t.Fatalf("response %d: op %d, %d payload bytes", i, op, len(payload))
		}
		if _, dup := status[reqID]; dup {
			t.Fatalf("two responses for id %d", reqID)
		}
		status[reqID] = payload[0]
	}
	for id := uint64(100); id <= 105; id++ {
		if status[id] != 0 {
			t.Fatalf("put id %d failed inside the batch", id)
		}
	}
	if status[106] != 1 {
		t.Fatal("undecodable value did not fail its own request")
	}
	if status[107] != 0 {
		t.Fatal("repeated-key put failed")
	}

	// Every committed write is visible through the ordinary API.
	ctx := context.Background()
	rc, err := forkbase.Dial(addr, forkbase.RemoteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	for i := 1; i < 6; i++ {
		key := fmt.Sprintf("ck-%d", i)
		o, err := rc.Get(ctx, key)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		v, err := rc.Value(ctx, key, o)
		if err != nil {
			t.Fatal(err)
		}
		if v != forkbase.String(fmt.Sprintf("v%d", i)) {
			t.Fatalf("%s = %v", key, v)
		}
	}
	// ck-0 was written twice from two racing batches; either order is
	// legal, but both versions must be in its history.
	o, err := rc.Get(ctx, "ck-0")
	if err != nil {
		t.Fatal(err)
	}
	v, err := rc.Value(ctx, "ck-0", o)
	if err != nil {
		t.Fatal(err)
	}
	if v != forkbase.String("v0") && v != forkbase.String("v0b") {
		t.Fatalf("ck-0 = %v", v)
	}
	hist, err := rc.Track(ctx, "ck-0", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Fatalf("ck-0 history has %d versions, want 2", len(hist))
	}
	if _, err := rc.Get(ctx, "ck-bad"); !errors.Is(err, forkbase.ErrKeyNotFound) {
		t.Fatalf("failed put left state behind: %v", err)
	}
}

// TestRemoteRoundTripAllocs pins the client-observed allocation cost
// of a small Get and Put round trip — the whole in-process pipeline:
// client encode, both frame trips, server dispatch and response
// decode. The bounds are deliberately loose (the engine and codec
// allocate result values by design); what they catch is the hot path
// regrowing a per-frame allocation storm once pooling rots.
func TestRemoteRoundTripAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	addr, _ := startServer(t, forkbase.Open(), forkbase.ServerOptions{})
	rc, err := forkbase.Dial(addr, forkbase.RemoteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	ctx := context.Background()
	if _, err := rc.Put(ctx, "k", forkbase.String("warm")); err != nil {
		t.Fatal(err)
	}

	// AllocsPerRun counts every malloc in the process, server included
	// — which is the point: the pin covers the full round trip.
	gets := testing.AllocsPerRun(100, func() {
		if _, err := rc.Get(ctx, "k"); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~18 allocs/op on the pooled path; pin at 2x so noise
	// passes but a per-frame allocation storm does not.
	if gets > 40 {
		t.Fatalf("remote Get round trip: %.0f allocs/op, want ≤40", gets)
	}
	puts := testing.AllocsPerRun(100, func() {
		if _, err := rc.Put(ctx, "k", forkbase.String("steady")); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~25 allocs/op (the engine allocates the new version).
	if puts > 60 {
		t.Fatalf("remote Put round trip: %.0f allocs/op, want ≤60", puts)
	}
}
