package forkbase_test

// One benchmark family per table and figure of the paper's evaluation
// (§6) — each wraps the corresponding experiment of internal/bench so
// `go test -bench .` regenerates the full study (output goes to the
// benchmark log), plus focused micro-benchmarks for the operations the
// tables measure. See EXPERIMENTS.md for the paper-vs-measured record.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"testing"

	forkbase "forkbase"

	"forkbase/internal/bench"
	"forkbase/internal/workload"
)

var bctx = context.Background()

// experimentOut returns the destination for experiment rows: verbose
// benchmark runs (-v) print them; normal runs keep the log clean.
func experimentOut() io.Writer {
	if testing.Verbose() {
		return os.Stdout
	}
	return io.Discard
}

func runExperiment(b *testing.B, fn func(io.Writer, bench.Scale) error) {
	b.Helper()
	// Scratch dirs come from the testing framework: tracked, unique
	// per call, and removed even when an experiment aborts mid-way.
	prev := bench.TempDirFunc
	bench.TempDirFunc = func(string) (string, error) { return b.TempDir(), nil }
	defer func() { bench.TempDirFunc = prev }()
	for i := 0; i < b.N; i++ {
		if err := fn(experimentOut(), bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Operations(b *testing.B)   { runExperiment(b, bench.RunTable3) }
func BenchmarkTable4PutBreakdown(b *testing.B) { runExperiment(b, bench.RunTable4) }
func BenchmarkFig8Scalability(b *testing.B)    { runExperiment(b, bench.RunFig8) }
func BenchmarkFig9ChainOps(b *testing.B)       { runExperiment(b, bench.RunFig9) }
func BenchmarkFig10Throughput(b *testing.B)    { runExperiment(b, bench.RunFig10) }
func BenchmarkFig11MerkleTrees(b *testing.B)   { runExperiment(b, bench.RunFig11) }
func BenchmarkFig12Scans(b *testing.B)         { runExperiment(b, bench.RunFig12) }
func BenchmarkFig13WikiEdit(b *testing.B)      { runExperiment(b, bench.RunFig13) }
func BenchmarkFig14WikiVersions(b *testing.B)  { runExperiment(b, bench.RunFig14) }
func BenchmarkFig15SkewBalance(b *testing.B)   { runExperiment(b, bench.RunFig15) }
func BenchmarkFig16DatasetMod(b *testing.B)    { runExperiment(b, bench.RunFig16) }
func BenchmarkFig17DiffAggregate(b *testing.B) { runExperiment(b, bench.RunFig17) }

func BenchmarkBatchPutExperiment(b *testing.B) { runExperiment(b, bench.RunBatchPut) }
func BenchmarkCacheExperiment(b *testing.B)    { runExperiment(b, bench.RunCache) }
func BenchmarkGCExperiment(b *testing.B)       { runExperiment(b, bench.RunGC) }

func BenchmarkAblationFixedVsPattern(b *testing.B) { runExperiment(b, bench.RunAblationFixedVsPattern) }
func BenchmarkAblationChunkSize(b *testing.B)      { runExperiment(b, bench.RunAblationChunkSize) }
func BenchmarkAblationHash(b *testing.B)           { runExperiment(b, bench.RunAblationHash) }
func BenchmarkAblationIndexPattern(b *testing.B)   { runExperiment(b, bench.RunAblationIndexPattern) }

// --- focused micro-benchmarks ---------------------------------------

// BenchmarkPut and BenchmarkBatchPut are a matched pair: the same
// write stream (small String values over 8 keys) issued as individual
// Puts vs 64-write batches through Store.Apply, against both Store
// implementations. The batch amortizes per-write key-lock acquisition,
// head loading and branch-table updates on the embedded engine, and —
// the architectural win — collapses per-write servlet dispatches (one
// channel round-trip each) into one dispatch per owning servlet on the
// cluster. RunBatchPut (internal/bench) additionally measures the
// effect with a simulated network hop, where the gap is largest.

func batchBackends(b *testing.B) map[string]forkbase.Store {
	b.Helper()
	cc, err := forkbase.OpenCluster(forkbase.ClusterConfig{Nodes: 4, TwoLayer: true})
	if err != nil {
		b.Fatal(err)
	}
	return map[string]forkbase.Store{"embedded": forkbase.Open(), "cluster": cc}
}

func BenchmarkPut(b *testing.B) {
	for name, st := range batchBackends(b) {
		b.Run(name, func(b *testing.B) {
			v := forkbase.String("batched-write-payload-0000000000")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Put(bctx, fmt.Sprintf("k%d", i%8), v); err != nil {
					b.Fatal(err)
				}
			}
		})
		st.Close()
	}
}

func BenchmarkBatchPut(b *testing.B) {
	for name, st := range batchBackends(b) {
		b.Run(name, func(b *testing.B) {
			v := forkbase.String("batched-write-payload-0000000000")
			const batchSize = 64
			b.ResetTimer()
			for done := 0; done < b.N; done += batchSize {
				batch := forkbase.NewBatch()
				for i := 0; i < batchSize && done+i < b.N; i++ {
					batch.Put(fmt.Sprintf("k%d", (done+i)%8), v)
				}
				if _, err := st.Apply(bctx, batch); err != nil {
					b.Fatal(err)
				}
			}
		})
		st.Close()
	}
}

func BenchmarkPutString1K(b *testing.B) {
	db := forkbase.Open()
	defer db.Close()
	data := workload.RandText(rand.New(rand.NewSource(1)), 1<<10)
	b.SetBytes(1 << 10)
	b.ResetTimer()
	// A bounded key space keeps the branch tables small so the bench
	// measures Put itself, not map growth; versions still accumulate.
	for i := 0; i < b.N; i++ {
		if _, err := db.Put(bctx, fmt.Sprintf("k%d", i%8192), forkbase.String(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutBlob20K(b *testing.B) {
	db := forkbase.Open()
	defer db.Close()
	data := workload.RandText(rand.New(rand.NewSource(2)), 20<<10)
	b.SetBytes(20 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := append([]byte(nil), data...)
		copy(p, fmt.Sprintf("%016d", i))
		if _, err := db.Put(bctx, fmt.Sprintf("k%d", i%8192), forkbase.NewBlob(p)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetBlobFull20K(b *testing.B) {
	db := forkbase.Open()
	defer db.Close()
	data := workload.RandText(rand.New(rand.NewSource(3)), 20<<10)
	for i := 0; i < 64; i++ {
		if _, err := db.Put(bctx, fmt.Sprintf("k%d", i), forkbase.NewBlob(data)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(20 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := db.Get(bctx, fmt.Sprintf("k%d", i%64))
		if err != nil {
			b.Fatal(err)
		}
		blob, err := db.BlobOf(o)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := blob.Bytes(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetFileStore reads Blob objects back from the log-structured
// file store with the chunk cache off and on. The repeated-read
// workload is the cache's target case: with the cache, the per-read
// disk fetch, crc check and chunk decode happen only on first touch.
func BenchmarkGetFileStore(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts forkbase.Options
	}{
		{"nocache", forkbase.Options{}},
		{"cache64MB", forkbase.Options{CacheBytes: 64 << 20}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			db, err := forkbase.OpenPath(b.TempDir(), tc.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			data := workload.RandText(rand.New(rand.NewSource(5)), 64<<10)
			const objects = 64
			for i := 0; i < objects; i++ {
				p := append([]byte(nil), data...)
				copy(p, fmt.Sprintf("%08d", i))
				if _, err := db.Put(bctx, fmt.Sprintf("k%d", i), forkbase.NewBlob(p)); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(64 << 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o, err := db.Get(bctx, fmt.Sprintf("k%d", i%objects))
				if err != nil {
					b.Fatal(err)
				}
				blob, err := db.BlobOf(o)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := blob.Bytes(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBlobSpliceMiddle(b *testing.B) {
	db := forkbase.Open()
	defer db.Close()
	data := workload.RandText(rand.New(rand.NewSource(4)), 256<<10)
	if _, err := db.Put(bctx, "blob", forkbase.NewBlob(data)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := db.Get(bctx, "blob")
		if err != nil {
			b.Fatal(err)
		}
		blob, err := db.BlobOf(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := blob.Splice(128<<10, 8, []byte(fmt.Sprintf("%08d", i))); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Put(bctx, "blob", blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapSetIn100K(b *testing.B) {
	db := forkbase.Open()
	defer db.Close()
	m := forkbase.NewMap()
	for i := 0; i < 100_000; i++ {
		m.Set([]byte(fmt.Sprintf("key-%08d", i)), []byte("value-00000000"))
	}
	if _, err := db.Put(bctx, "map", m); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := db.Get(bctx, "map")
		if err != nil {
			b.Fatal(err)
		}
		mm, err := db.MapOf(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := mm.Set([]byte(fmt.Sprintf("key-%08d", i%100_000)), []byte(fmt.Sprintf("value-%08d", i))); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Put(bctx, "map", mm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapGetIn100K(b *testing.B) {
	db := forkbase.Open()
	defer db.Close()
	m := forkbase.NewMap()
	for i := 0; i < 100_000; i++ {
		m.Set([]byte(fmt.Sprintf("key-%08d", i)), []byte("value"))
	}
	if _, err := db.Put(bctx, "map", m); err != nil {
		b.Fatal(err)
	}
	o, _ := db.Get(bctx, "map")
	mm, _ := db.MapOf(o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := mm.Get([]byte(fmt.Sprintf("key-%08d", i%100_000))); err != nil || !ok {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrackHistory(b *testing.B) {
	db := forkbase.Open()
	defer db.Close()
	for i := 0; i < 100; i++ {
		if _, err := db.Put(bctx, "doc", forkbase.String(fmt.Sprintf("v%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Track(bctx, "doc", 0, 9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiffLargeMaps(b *testing.B) {
	db := forkbase.Open()
	defer db.Close()
	m := forkbase.NewMap()
	for i := 0; i < 50_000; i++ {
		m.Set([]byte(fmt.Sprintf("key-%08d", i)), []byte("value"))
	}
	u1, err := db.Put(bctx, "map", m)
	if err != nil {
		b.Fatal(err)
	}
	o, _ := db.Get(bctx, "map")
	mm, _ := db.MapOf(o)
	mm.Set([]byte("key-00025000"), []byte("changed"))
	u2, err := db.Put(bctx, "map", mm)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := db.DiffVersions(u1, u2)
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Sorted.Modified) != 1 {
			b.Fatal("diff wrong")
		}
	}
}

// benchRemote serves an in-memory store on a loopback listener and
// returns a connected client; cleanup drains the server.
func benchRemote(b *testing.B) *forkbase.RemoteStore {
	b.Helper()
	backend := forkbase.Open()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := forkbase.NewServer(backend, forkbase.ServerOptions{})
	go srv.Serve(ln)
	rc, err := forkbase.Dial(ln.Addr().String(), forkbase.RemoteConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		rc.Close()
		srv.Close()
		backend.Close()
	})
	return rc
}

// BenchmarkRemotePut measures one small write across the wire —
// frame encode, TCP loopback, dispatch, engine put, response — the
// per-request floor of the serving subsystem. RunParallel overlaps
// requests the way a pipelined client does.
func BenchmarkRemotePut(b *testing.B) {
	rc := benchRemote(b)
	v := forkbase.String("remote-write-payload-00000000000")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := rc.Put(bctx, fmt.Sprintf("k%d", i%8), v); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkRemoteGet measures one small read across the wire.
func BenchmarkRemoteGet(b *testing.B) {
	rc := benchRemote(b)
	if _, err := rc.Put(bctx, "k", forkbase.String("remote-read-payload")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := rc.Get(bctx, "k"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkNetExperiment(b *testing.B) { runExperiment(b, bench.RunNet) }

func BenchmarkChunkSyncExperiment(b *testing.B) { runExperiment(b, bench.RunChunkSync) }
