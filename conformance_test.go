package forkbase_test

// Cross-implementation conformance: every scenario below runs
// unchanged against both Store implementations — the embedded DB and
// the cluster client — through the unified client API. A behavioural
// divergence between deployment modes is a bug in whichever backend
// diverges.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	forkbase "forkbase"
)

// stores enumerates the Store implementations under test. acl, when
// non-nil, is installed into the store so ACL scenarios can exercise
// closed-mode behaviour. The "remote" entry is a RemoteStore talking
// over a real TCP loopback connection to an in-process server wrapping
// an embedded DB — every scenario below exercises the wire protocol,
// the typed-error round-trip and the request multiplexing for free.
func stores(t *testing.T, acl *forkbase.ACL) map[string]forkbase.Store {
	t.Helper()
	cc, err := forkbase.OpenCluster(forkbase.ClusterConfig{Nodes: 3, TwoLayer: true, ACL: acl})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]forkbase.Store{
		"embedded": forkbase.Open(forkbase.Options{ACL: acl}),
		"cluster":  cc,
		"remote":   remoteStore(t, forkbase.Open(forkbase.Options{ACL: acl})),
		// Same wire protocol, but with chunk-granular transfer active:
		// chunkable values move as POS-Tree deltas through a client-side
		// chunk cache. Every scenario — guarded-put races, ACL denials,
		// GC reclamation, typed errors — must behave identically.
		"remote+chunksync": remoteStoreChunked(t, forkbase.Open(forkbase.Options{ACL: acl})),
	}
}

// remoteStore serves backend on a loopback listener and dials it.
// Cleanup shuts the server down gracefully and closes the backend.
func remoteStore(t *testing.T, backend forkbase.Store) *forkbase.RemoteStore {
	t.Helper()
	return remoteStoreCfg(t, backend, forkbase.RemoteConfig{Conns: 2})
}

// remoteStoreChunked is remoteStore with chunk sync and an on-disk
// client chunk cache enabled.
func remoteStoreChunked(t *testing.T, backend forkbase.Store) *forkbase.RemoteStore {
	t.Helper()
	return remoteStoreCfg(t, backend, forkbase.RemoteConfig{
		Conns:           2,
		ChunkSync:       true,
		ChunkCacheDir:   t.TempDir(),
		ChunkCacheBytes: 8 << 20,
	})
}

func remoteStoreCfg(t *testing.T, backend forkbase.Store, cfg forkbase.RemoteConfig) *forkbase.RemoteStore {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := forkbase.NewServer(backend, forkbase.ServerOptions{})
	go srv.Serve(ln)
	rs, err := forkbase.Dial(ln.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
		backend.Close()
	})
	return rs
}

func TestStoreConformance(t *testing.T) {
	ctx := context.Background()
	scenarios := []struct {
		name string
		run  func(t *testing.T, st forkbase.Store)
	}{
		{"PutGetRoundtrip", func(t *testing.T, st forkbase.Store) {
			uid, err := st.Put(ctx, "k", forkbase.String("v1"), forkbase.WithMeta("first"))
			if err != nil {
				t.Fatal(err)
			}
			o, err := st.Get(ctx, "k")
			if err != nil {
				t.Fatal(err)
			}
			if o.UID() != uid || string(o.Data) != "v1" || string(o.Context) != "first" {
				t.Fatalf("got %q meta %q", o.Data, o.Context)
			}
			// The same version is reachable pinned by uid (M2).
			o2, err := st.Get(ctx, "k", forkbase.WithBase(uid))
			if err != nil || o2.UID() != uid {
				t.Fatalf("get by uid: %v", err)
			}
			if _, err := st.Get(ctx, "absent"); !errors.Is(err, forkbase.ErrKeyNotFound) {
				t.Fatalf("missing key: %v", err)
			}
		}},
		{"BranchIsolation", func(t *testing.T, st forkbase.Store) {
			if _, err := st.Put(ctx, "cfg", forkbase.String("v1")); err != nil {
				t.Fatal(err)
			}
			if err := st.Fork(ctx, "cfg", "dev"); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Put(ctx, "cfg", forkbase.String("v2-dev"), forkbase.WithBranch("dev")); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Put(ctx, "cfg", forkbase.String("v2-master")); err != nil {
				t.Fatal(err)
			}
			dev, err := st.Get(ctx, "cfg", forkbase.WithBranch("dev"))
			if err != nil {
				t.Fatal(err)
			}
			master, err := st.Get(ctx, "cfg")
			if err != nil {
				t.Fatal(err)
			}
			if string(dev.Data) != "v2-dev" || string(master.Data) != "v2-master" {
				t.Fatalf("isolation broken: %q / %q", dev.Data, master.Data)
			}
			bl, err := st.ListBranches(ctx, "cfg")
			if err != nil || len(bl.Tagged) != 2 {
				t.Fatalf("branches: %+v (%v)", bl, err)
			}
		}},
		{"ForkAtVersion", func(t *testing.T, st forkbase.Store) {
			old, err := st.Put(ctx, "k", forkbase.String("old"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Put(ctx, "k", forkbase.String("new")); err != nil {
				t.Fatal(err)
			}
			if err := st.Fork(ctx, "k", "revival", forkbase.WithBase(old)); err != nil {
				t.Fatal(err)
			}
			o, err := st.Get(ctx, "k", forkbase.WithBranch("revival"))
			if err != nil || o.UID() != old {
				t.Fatalf("revival head: %v", err)
			}
		}},
		{"MergeBranches", func(t *testing.T, st forkbase.Store) {
			m := forkbase.NewMap()
			m.Set([]byte("shared"), []byte("base"))
			if _, err := st.Put(ctx, "data", m); err != nil {
				t.Fatal(err)
			}
			if err := st.Fork(ctx, "data", "feature"); err != nil {
				t.Fatal(err)
			}
			edit := func(branch, key string) {
				o, err := st.Get(ctx, "data", forkbase.WithBranch(branch))
				if err != nil {
					t.Fatal(err)
				}
				v, err := st.Value(ctx, "data", o)
				if err != nil {
					t.Fatal(err)
				}
				mm, err := forkbase.AsMap(v)
				if err != nil {
					t.Fatal(err)
				}
				mm.Set([]byte(key), []byte("x"))
				if _, err := st.Put(ctx, "data", mm, forkbase.WithBranch(branch)); err != nil {
					t.Fatal(err)
				}
			}
			edit("master", "from-master")
			edit("feature", "from-feature")
			uid, conflicts, err := st.Merge(ctx, "data", "master", forkbase.WithBranch("feature"))
			if err != nil {
				t.Fatalf("%v %v", err, conflicts)
			}
			o, err := st.Get(ctx, "data", forkbase.WithBase(uid))
			if err != nil {
				t.Fatal(err)
			}
			v, err := st.Value(ctx, "data", o)
			if err != nil {
				t.Fatal(err)
			}
			merged, err := forkbase.AsMap(v)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []string{"shared", "from-master", "from-feature"} {
				if _, ok, _ := merged.Get([]byte(k)); !ok {
					t.Fatalf("merged map missing %q", k)
				}
			}
		}},
		{"MergeConflictSurfaced", func(t *testing.T, st forkbase.Store) {
			if _, err := st.Put(ctx, "k", forkbase.String("base")); err != nil {
				t.Fatal(err)
			}
			if err := st.Fork(ctx, "k", "other"); err != nil {
				t.Fatal(err)
			}
			st.Put(ctx, "k", forkbase.String("left"))
			st.Put(ctx, "k", forkbase.String("right"), forkbase.WithBranch("other"))
			_, conflicts, err := st.Merge(ctx, "k", "master", forkbase.WithBranch("other"))
			if !errors.Is(err, forkbase.ErrConflict) || len(conflicts) != 1 {
				t.Fatalf("conflict surfacing: %v %v", err, conflicts)
			}
			uid, _, err := st.Merge(ctx, "k", "master",
				forkbase.WithBranch("other"), forkbase.WithResolver(forkbase.AppendResolve))
			if err != nil {
				t.Fatal(err)
			}
			o, err := st.Get(ctx, "k", forkbase.WithBase(uid))
			if err != nil || string(o.Data) != "leftright" {
				t.Fatalf("resolved = %q (%v)", o.Data, err)
			}
		}},
		{"ForkOnConflictAndUntaggedMerge", func(t *testing.T, st forkbase.Store) {
			base, err := st.Put(ctx, "state", forkbase.Int(100), forkbase.WithBase(forkbase.UID{}))
			if err != nil {
				t.Fatal(err)
			}
			u1, err := st.Put(ctx, "state", forkbase.Int(110), forkbase.WithBase(base))
			if err != nil {
				t.Fatal(err)
			}
			u2, err := st.Put(ctx, "state", forkbase.Int(95), forkbase.WithBase(base))
			if err != nil {
				t.Fatal(err)
			}
			bl, err := st.ListBranches(ctx, "state")
			if err != nil || len(bl.Untagged) != 2 {
				t.Fatalf("untagged heads: %+v (%v)", bl.Untagged, err)
			}
			merged, _, err := st.Merge(ctx, "state", "",
				forkbase.WithBase(u1), forkbase.WithBase(u2), forkbase.WithResolver(forkbase.Aggregate))
			if err != nil {
				t.Fatal(err)
			}
			o, err := st.Get(ctx, "state", forkbase.WithBase(merged))
			if err != nil {
				t.Fatal(err)
			}
			v, err := st.Value(ctx, "state", o)
			if err != nil {
				t.Fatal(err)
			}
			if v.(forkbase.Int) != 105 {
				t.Fatalf("aggregate merge = %v, want 105", v)
			}
		}},
		{"TrackHistory", func(t *testing.T, st forkbase.Store) {
			var uids []forkbase.UID
			for i := 0; i < 6; i++ {
				uid, err := st.Put(ctx, "doc", forkbase.String(fmt.Sprintf("v%d", i)))
				if err != nil {
					t.Fatal(err)
				}
				uids = append(uids, uid)
			}
			hist, err := st.Track(ctx, "doc", 0, 2)
			if err != nil || len(hist) != 3 || string(hist[0].Data) != "v5" {
				t.Fatalf("track: %d %v", len(hist), err)
			}
			hist, err = st.Track(ctx, "doc", 1, 1, forkbase.WithBase(uids[3]))
			if err != nil || len(hist) != 1 || string(hist[0].Data) != "v2" {
				t.Fatalf("track by uid: %v", err)
			}
		}},
		{"GuardedPutRace", func(t *testing.T, st forkbase.Store) {
			head, err := st.Put(ctx, "ctr", forkbase.String("start"))
			if err != nil {
				t.Fatal(err)
			}
			// Two writers race a guarded Put against the same observed
			// head: exactly one must win, the other must see
			// ErrGuardFailed — on every backend.
			var wg sync.WaitGroup
			errs := make([]error, 2)
			for i := range errs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, errs[i] = st.Put(ctx, "ctr",
						forkbase.String(fmt.Sprintf("writer-%d", i)), forkbase.WithGuard(head))
				}(i)
			}
			wg.Wait()
			wins, losses := 0, 0
			for _, err := range errs {
				switch {
				case err == nil:
					wins++
				case errors.Is(err, forkbase.ErrGuardFailed):
					losses++
				default:
					t.Fatalf("unexpected race outcome: %v", err)
				}
			}
			if wins != 1 || losses != 1 {
				t.Fatalf("guarded race: %d wins, %d guard failures", wins, losses)
			}
		}},
		{"BatchApply", func(t *testing.T, st forkbase.Store) {
			b := forkbase.NewBatch()
			for i := 0; i < 5; i++ {
				b.Put("log", forkbase.String(fmt.Sprintf("entry-%d", i)))
			}
			b.Put("other", forkbase.String("x"), forkbase.WithBranch("side"))
			uids, err := st.Apply(ctx, b)
			if err != nil || len(uids) != 6 {
				t.Fatalf("apply: %d %v", len(uids), err)
			}
			// Writes to the same key+branch chained: history is linear.
			hist, err := st.Track(ctx, "log", 0, 9)
			if err != nil || len(hist) != 5 {
				t.Fatalf("batched history: %d %v", len(hist), err)
			}
			if string(hist[0].Data) != "entry-4" || hist[0].UID() != uids[4] {
				t.Fatalf("batch head = %q", hist[0].Data)
			}
			o, err := st.Get(ctx, "other", forkbase.WithBranch("side"))
			if err != nil || o.UID() != uids[5] {
				t.Fatalf("cross-key batch write: %v", err)
			}
			// A failing guard aborts the whole key group atomically.
			bad := forkbase.NewBatch().
				Put("log", forkbase.String("pre-fail")).
				Put("log", forkbase.String("guarded"), forkbase.WithGuard(forkbase.UID{}))
			if _, err := st.Apply(ctx, bad); !errors.Is(err, forkbase.ErrGuardFailed) {
				t.Fatalf("bad batch: %v", err)
			}
			head, err := st.Get(ctx, "log")
			if err != nil || head.UID() != uids[4] {
				t.Fatal("failed batch leaked a head update")
			}
		}},
		{"GuardOnMissingBranch", func(t *testing.T, st forkbase.Store) {
			// A guard against a branch that does not exist is a
			// different failure than losing a guard race: the caller
			// holding a uid it once read needs to distinguish "branch
			// gone" (give up, or re-create) from "head moved" (re-read
			// and retry). Every backend must report ErrBranchNotFound
			// for the former, on a missing key and a missing branch
			// alike, and for single and batched writes alike.
			head, err := st.Put(ctx, "guarded", forkbase.String("v"))
			if err != nil {
				t.Fatal(err)
			}
			_, err = st.Put(ctx, "neverwritten", forkbase.String("x"), forkbase.WithGuard(head))
			if !errors.Is(err, forkbase.ErrBranchNotFound) {
				t.Fatalf("guard on missing key: %v, want ErrBranchNotFound", err)
			}
			_, err = st.Put(ctx, "guarded", forkbase.String("x"),
				forkbase.WithBranch("nobranch"), forkbase.WithGuard(head))
			if !errors.Is(err, forkbase.ErrBranchNotFound) {
				t.Fatalf("guard on missing branch: %v, want ErrBranchNotFound", err)
			}
			// The race case still reports ErrGuardFailed.
			if _, err := st.Put(ctx, "guarded", forkbase.String("v2")); err != nil {
				t.Fatal(err)
			}
			_, err = st.Put(ctx, "guarded", forkbase.String("x"), forkbase.WithGuard(forkbase.UID{1}))
			if !errors.Is(err, forkbase.ErrGuardFailed) {
				t.Fatalf("stale guard: %v, want ErrGuardFailed", err)
			}
			// Batched writes draw the same distinction.
			b := forkbase.NewBatch().
				Put("guarded", forkbase.String("x"), forkbase.WithBranch("nobranch"), forkbase.WithGuard(head))
			if _, err := st.Apply(ctx, b); !errors.Is(err, forkbase.ErrBranchNotFound) {
				t.Fatalf("batched guard on missing branch: %v, want ErrBranchNotFound", err)
			}
		}},
		{"RenameRemoveBranch", func(t *testing.T, st forkbase.Store) {
			st.Put(ctx, "k", forkbase.String("v"))
			if err := st.Fork(ctx, "k", "tmp"); err != nil {
				t.Fatal(err)
			}
			if err := st.RenameBranch(ctx, "k", "tmp", "kept"); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Get(ctx, "k", forkbase.WithBranch("tmp")); !errors.Is(err, forkbase.ErrBranchNotFound) {
				t.Fatalf("renamed branch: %v", err)
			}
			if err := st.RemoveBranch(ctx, "k", "kept"); err != nil {
				t.Fatal(err)
			}
			bl, _ := st.ListBranches(ctx, "k")
			if len(bl.Tagged) != 1 {
				t.Fatalf("branches after remove: %+v", bl.Tagged)
			}
		}},
		{"DiffVersions", func(t *testing.T, st forkbase.Store) {
			m := forkbase.NewMap()
			for i := 0; i < 300; i++ {
				m.Set([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
			}
			u1, err := st.Put(ctx, "d", m)
			if err != nil {
				t.Fatal(err)
			}
			o, _ := st.Get(ctx, "d")
			v, err := st.Value(ctx, "d", o)
			if err != nil {
				t.Fatal(err)
			}
			m2, _ := forkbase.AsMap(v)
			m2.Set([]byte("k0100"), []byte("changed"))
			u2, err := st.Put(ctx, "d", m2)
			if err != nil {
				t.Fatal(err)
			}
			d, err := st.Diff(ctx, "d", u1, u2)
			if err != nil || d.Sorted == nil || len(d.Sorted.Modified) != 1 {
				t.Fatalf("diff: %+v %v", d, err)
			}
		}},
		{"ListKeys", func(t *testing.T, st forkbase.Store) {
			want := []string{"a", "b", "c"}
			for _, k := range want {
				if _, err := st.Put(ctx, k, forkbase.String("v")); err != nil {
					t.Fatal(err)
				}
			}
			keys, err := st.ListKeys(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != len(want) {
				t.Fatalf("keys = %v", keys)
			}
			for i, k := range want {
				if keys[i] != k {
					t.Fatalf("keys = %v, want sorted %v", keys, want)
				}
			}
		}},
		{"LargeBlobRoundtrip", func(t *testing.T, st forkbase.Store) {
			data := bytes.Repeat([]byte("forkbase!"), 4096) // ~36 KB, multi-chunk
			if _, err := st.Put(ctx, "blob", forkbase.NewBlob(data)); err != nil {
				t.Fatal(err)
			}
			o, err := st.Get(ctx, "blob")
			if err != nil {
				t.Fatal(err)
			}
			v, err := st.Value(ctx, "blob", o)
			if err != nil {
				t.Fatal(err)
			}
			b, err := forkbase.AsBlob(v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := b.Bytes()
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("blob roundtrip: %d bytes, err %v", len(got), err)
			}
		}},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			for name, st := range stores(t, nil) {
				t.Run(name, func(t *testing.T) {
					defer st.Close()
					sc.run(t, st)
				})
			}
		})
	}
}

// TestStoreConformanceACL verifies that access-control behaviour is
// identical across implementations: denials surface as ErrAccessDenied
// on both the embedded DB and the ClusterClient, and granted users
// proceed.
func TestStoreConformanceACL(t *testing.T) {
	ctx := context.Background()
	newACL := func() *forkbase.ACL {
		acl := forkbase.NewACL(false)
		acl.Grant("admin", "", "", forkbase.PermAdmin)
		acl.Grant("writer", "doc", "", forkbase.PermWrite)
		acl.Grant("reader", "doc", "", forkbase.PermRead)
		return acl
	}
	for name, st := range stores(t, newACL()) {
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			// Anonymous and unknown users are denied outright.
			if _, err := st.Put(ctx, "doc", forkbase.String("v")); !errors.Is(err, forkbase.ErrAccessDenied) {
				t.Fatalf("anonymous write: %v", err)
			}
			if _, err := st.Put(ctx, "doc", forkbase.String("v"), forkbase.WithUser("stranger")); !errors.Is(err, forkbase.ErrAccessDenied) {
				t.Fatalf("stranger write: %v", err)
			}
			// A reader can read but not write; a writer can do both.
			if _, err := st.Put(ctx, "doc", forkbase.String("v1"), forkbase.WithUser("writer")); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Get(ctx, "doc", forkbase.WithUser("reader")); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Put(ctx, "doc", forkbase.String("v2"), forkbase.WithUser("reader")); !errors.Is(err, forkbase.ErrAccessDenied) {
				t.Fatalf("reader write: %v", err)
			}
			// Permissions are per key: the writer holds nothing on
			// other keys.
			if _, err := st.Put(ctx, "other", forkbase.String("v"), forkbase.WithUser("writer")); !errors.Is(err, forkbase.ErrAccessDenied) {
				t.Fatalf("writer on other key: %v", err)
			}
			// Batches are checked per entry before any write lands.
			b := forkbase.NewBatch().
				Put("doc", forkbase.String("ok")).
				Put("other", forkbase.String("denied"))
			if _, err := st.Apply(ctx, b, forkbase.WithUser("writer")); !errors.Is(err, forkbase.ErrAccessDenied) {
				t.Fatalf("batch with denied entry: %v", err)
			}
			// Branch admin needs PermAdmin, write is not enough.
			if err := st.Fork(ctx, "doc", "dev", forkbase.WithUser("writer")); err != nil {
				t.Fatal(err)
			}
			if err := st.RemoveBranch(ctx, "doc", "dev", forkbase.WithUser("writer")); !errors.Is(err, forkbase.ErrAccessDenied) {
				t.Fatalf("writer removed a branch: %v", err)
			}
			if err := st.RemoveBranch(ctx, "doc", "dev", forkbase.WithUser("admin")); err != nil {
				t.Fatal(err)
			}
			// A version uid is not a capability: reads and derivations
			// pinned by WithBase are checked against the key the
			// version belongs to, not the caller-supplied routing key.
			secret, err := st.Put(ctx, "doc", forkbase.String("classified"), forkbase.WithUser("writer"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Get(ctx, "other", forkbase.WithUser("stranger"), forkbase.WithBase(secret)); !errors.Is(err, forkbase.ErrAccessDenied) {
				t.Fatalf("uid used as read capability: %v", err)
			}
			if _, err := st.Track(ctx, "other", 0, 5, forkbase.WithUser("stranger"), forkbase.WithBase(secret)); !errors.Is(err, forkbase.ErrAccessDenied) {
				t.Fatalf("uid used as track capability: %v", err)
			}
			// Nor can a writer on another key pull the content across
			// via a derived put. The embedded store denies through the
			// ACL; the cluster may deny earlier because the foreign
			// version is not reachable from the owning servlet at all
			// — either way the derivation must fail.
			acl2 := newACL()
			acl2.Grant("outsider", "mine", "", forkbase.PermWrite)
			st2s := stores(t, acl2)
			for n2, st2 := range st2s {
				s, err := st2.Put(ctx, "doc", forkbase.String("classified"), forkbase.WithUser("writer"))
				if err != nil {
					t.Fatal(err)
				}
				_, err = st2.Put(ctx, "mine", forkbase.String("x"), forkbase.WithUser("outsider"), forkbase.WithBase(s))
				if err == nil {
					t.Fatalf("%s: cross-key derived put succeeded", n2)
				}
				if n2 == "embedded" && !errors.Is(err, forkbase.ErrAccessDenied) {
					t.Fatalf("%s: cross-key derived put: %v", n2, err)
				}
				st2.Close()
			}
			// ListKeys needs global read, which only admin holds.
			if _, err := st.ListKeys(ctx, forkbase.WithUser("reader")); !errors.Is(err, forkbase.ErrAccessDenied) {
				t.Fatalf("reader listed the key space: %v", err)
			}
			if _, err := st.ListKeys(ctx, forkbase.WithUser("admin")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStoreContextCancellation verifies that an already-cancelled
// context aborts calls on both implementations.
func TestStoreContextCancellation(t *testing.T) {
	for name, st := range stores(t, nil) {
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			if _, err := st.Put(context.Background(), "k", forkbase.String("v")); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := st.Get(ctx, "k"); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled get: %v", err)
			}
			if _, err := st.Put(ctx, "k", forkbase.String("v2")); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled put: %v", err)
			}
			if _, err := st.Apply(ctx, forkbase.NewBatch().Put("k", forkbase.String("v3"))); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled batch: %v", err)
			}
		})
	}
}

// TestStoreContextCancellationDeepHistory verifies that the
// history-walking calls — Track over a deep chain, Merge (whose LCA
// search walks both histories), Diff — refuse a pre-cancelled context
// on every backend. The engine additionally observes ctx at every
// step of these walks, which is what the remote client's
// cancel-on-disconnect relies on to stop a server-side walk mid-way.
func TestStoreContextCancellationDeepHistory(t *testing.T) {
	for name, st := range stores(t, nil) {
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			ctx := context.Background()
			// A deep linear history plus a branch forked at its root:
			// the worst case for both Track and the LCA search.
			b := forkbase.NewBatch()
			for i := 0; i < 200; i++ {
				b.Put("deep", forkbase.String(fmt.Sprintf("v%d", i)))
			}
			uids, err := st.Apply(ctx, b)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Fork(ctx, "deep", "old", forkbase.WithBase(uids[0])); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Put(ctx, "deep", forkbase.String("side"), forkbase.WithBranch("old")); err != nil {
				t.Fatal(err)
			}
			cancelled, cancel := context.WithCancel(ctx)
			cancel()
			if _, err := st.Track(cancelled, "deep", 0, 500); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled deep track: %v", err)
			}
			if _, _, err := st.Merge(cancelled, "deep", "master",
				forkbase.WithBranch("old"), forkbase.WithResolver(forkbase.ChooseB)); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled deep merge: %v", err)
			}
			if _, err := st.Diff(cancelled, "deep", uids[0], uids[len(uids)-1]); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled diff: %v", err)
			}
			// The store still serves once the pressure is off.
			if _, err := st.Get(ctx, "deep"); err != nil {
				t.Fatal(err)
			}
		})
	}
}
